package dmon

import (
	"sort"
	"sync"
	"time"

	"dproc/internal/metrics"
)

// HistoryDepth is how many past samples the store retains per (node,
// metric) — a small circular buffer in the spirit of MAGNeT's in-kernel
// event ring, letting applications inspect recent trends rather than only
// the latest value.
const HistoryDepth = 64

// ring is a fixed-capacity circular buffer of samples.
type ring struct {
	buf   [HistoryDepth]metrics.Sample
	start int
	n     int
}

func (r *ring) push(s metrics.Sample) {
	if r.n < HistoryDepth {
		r.buf[(r.start+r.n)%HistoryDepth] = s
		r.n++
		return
	}
	r.buf[r.start] = s
	r.start = (r.start + 1) % HistoryDepth
}

// slice returns up to n samples, oldest first (all if n <= 0).
func (r *ring) slice(n int) []metrics.Sample {
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]metrics.Sample, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(r.start+r.n-n+i)%HistoryDepth]
	}
	return out
}

// Store holds the most recent monitoring data received from remote nodes.
// It is the backing state for the /proc/cluster/<node>/<metric> pseudo-files.
type Store struct {
	mu      sync.RWMutex
	data    map[string]map[metrics.ID]metrics.Sample
	hist    map[string]map[metrics.ID]*ring
	lastRpt map[string]time.Time
	reports map[string]uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		data:    map[string]map[metrics.ID]metrics.Sample{},
		hist:    map[string]map[metrics.ID]*ring{},
		lastRpt: map[string]time.Time{},
		reports: map[string]uint64{},
	}
}

// Update folds one received report into the store.
func (s *Store) Update(r *metrics.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nodeData, ok := s.data[r.Node]
	if !ok {
		nodeData = map[metrics.ID]metrics.Sample{}
		s.data[r.Node] = nodeData
	}
	nodeHist, ok := s.hist[r.Node]
	if !ok {
		nodeHist = map[metrics.ID]*ring{}
		s.hist[r.Node] = nodeHist
	}
	for _, sample := range r.Samples {
		nodeData[sample.ID] = sample
		rg, ok := nodeHist[sample.ID]
		if !ok {
			rg = &ring{}
			nodeHist[sample.ID] = rg
		}
		rg.push(sample)
	}
	if r.Time.After(s.lastRpt[r.Node]) {
		s.lastRpt[r.Node] = r.Time
	}
	s.reports[r.Node]++
}

// History returns up to n retained samples for (node, metric), oldest
// first; n <= 0 returns everything retained.
func (s *Store) History(node string, id metrics.ID, n int) []metrics.Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rg, ok := s.hist[node][id]
	if !ok {
		return nil
	}
	return rg.slice(n)
}

// Get returns the latest sample for (node, metric).
func (s *Store) Get(node string, id metrics.ID) (metrics.Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sample, ok := s.data[node][id]
	return sample, ok
}

// Value returns just the value for (node, metric), with ok=false if absent.
func (s *Store) Value(node string, id metrics.ID) (float64, bool) {
	sample, ok := s.Get(node, id)
	return sample.Value, ok
}

// Nodes lists the nodes that have reported, sorted.
func (s *Store) Nodes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for n := range s.data {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Metrics lists the metric IDs known for a node, sorted.
func (s *Store) Metrics(node string) []metrics.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]metrics.ID, 0, len(s.data[node]))
	for id := range s.data[node] {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LastReport returns when a node last reported and how many reports it has
// sent.
func (s *Store) LastReport(node string) (time.Time, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastRpt[node], s.reports[node]
}

// Forget drops all state for a node (e.g. after it leaves the cluster).
func (s *Store) Forget(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, node)
	delete(s.hist, node)
	delete(s.lastRpt, node)
	delete(s.reports, node)
}

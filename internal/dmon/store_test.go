package dmon

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dproc/internal/clock"
	"dproc/internal/metrics"
)

func reportAt(node string, seq uint64, value float64) *metrics.Report {
	ts := clock.Epoch.Add(time.Duration(seq) * time.Second)
	return &metrics.Report{
		Node: node, Seq: seq, Time: ts,
		Samples: []metrics.Sample{{ID: metrics.LOADAVG, Value: value, Time: ts}},
	}
}

func TestHistoryAccumulatesInOrder(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 5; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	h := s.History("alan", metrics.LOADAVG, 0)
	if len(h) != 5 {
		t.Fatalf("history length = %d", len(h))
	}
	for i, sample := range h {
		if sample.Value != float64(i+1) {
			t.Fatalf("history = %v, want oldest-first 1..5", h)
		}
		if want := clock.Epoch.Add(time.Duration(i+1) * time.Second); !sample.Time.Equal(want) {
			t.Fatalf("history[%d].Time = %v, want %v", i, sample.Time, want)
		}
	}
	// A bounded request returns the most recent n.
	h2 := s.History("alan", metrics.LOADAVG, 2)
	if len(h2) != 2 || h2[0].Value != 4 || h2[1].Value != 5 {
		t.Fatalf("History(2) = %v", h2)
	}
}

func TestHistoryDefaultViewIsDepthBounded(t *testing.T) {
	s := NewStore()
	total := HistoryDepth + 17
	for i := 1; i <= total; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	h := s.History("alan", metrics.LOADAVG, 0)
	if len(h) != HistoryDepth {
		t.Fatalf("history length = %d, want %d", len(h), HistoryDepth)
	}
	// Oldest in the default view is total-HistoryDepth+1.
	if h[0].Value != float64(total-HistoryDepth+1) || h[len(h)-1].Value != float64(total) {
		t.Fatalf("history range = [%g, %g]", h[0].Value, h[len(h)-1].Value)
	}
	// The tsdb retains the full run underneath the 64-deep default view.
	if deep := s.History("alan", metrics.LOADAVG, total); len(deep) != total {
		t.Fatalf("explicit History(%d) = %d samples", total, len(deep))
	}
}

func TestHistoryDepthOption(t *testing.T) {
	s := NewStoreWith(StoreOptions{HistoryDepth: 8})
	for i := 1; i <= 20; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	h := s.History("alan", metrics.LOADAVG, 0)
	if len(h) != 8 || h[0].Value != 13 || h[7].Value != 20 {
		t.Fatalf("History(0) with depth 8 = %v", h)
	}
}

func TestHistoryRetentionOption(t *testing.T) {
	s := NewStoreWith(StoreOptions{Retention: time.Minute, ChunkSize: 16})
	for i := 1; i <= 600; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	st := s.TSDB().Stats()
	// One chunk (16 samples) spans 16s; a 60s window keeps at most a
	// handful of chunks plus the head.
	if st.Samples > 5*16+16 {
		t.Fatalf("retention kept %d samples for a 60s window at 1 Hz", st.Samples)
	}
	if h := s.History("alan", metrics.LOADAVG, 0); h[len(h)-1].Value != 600 {
		t.Fatal("newest sample lost to retention")
	}
}

func TestHistoryMissingNodeOrMetric(t *testing.T) {
	s := NewStore()
	if h := s.History("ghost", metrics.LOADAVG, 0); h != nil {
		t.Fatalf("history for unknown node = %v", h)
	}
	s.Update(reportAt("alan", 1, 1))
	if h := s.History("alan", metrics.FREEMEM, 0); h != nil {
		t.Fatalf("history for unreported metric = %v", h)
	}
}

func TestHistoryForgottenWithNode(t *testing.T) {
	s := NewStore()
	s.Update(reportAt("alan", 1, 1))
	s.Forget("alan")
	if h := s.History("alan", metrics.LOADAVG, 0); h != nil {
		t.Fatal("history survived Forget")
	}
	if names := s.TSDB().Names(); len(names) != 0 {
		t.Fatalf("tsdb series survived Forget: %v", names)
	}
}

func TestHistoryIgnoresReplayedReports(t *testing.T) {
	s := NewStore()
	s.Update(reportAt("alan", 1, 1))
	s.Update(reportAt("alan", 2, 2))
	s.Update(reportAt("alan", 1, 1)) // replayed
	if h := s.History("alan", metrics.LOADAVG, 0); len(h) != 2 {
		t.Fatalf("replayed report duplicated history: %v", h)
	}
}

func TestStoreQuery(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 60; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	out, err := s.Query("alan", "avg loadavg last 10s")
	if err != nil {
		t.Fatal(err)
	}
	// Samples 51..60 → avg 55.5.
	if !strings.Contains(out, "value 55.5\n") || !strings.Contains(out, "samples 10\n") {
		t.Fatalf("query result = %q", out)
	}
	if _, err := s.Query("alan", "avg nope last 10s"); err == nil {
		t.Fatal("query for unknown metric succeeded")
	}
	if _, err := s.Query("ghost", "avg loadavg last 10s"); err == nil {
		t.Fatal("query for unknown node succeeded")
	}
	if _, err := s.Query("alan", "gibberish"); err == nil {
		t.Fatal("malformed query succeeded")
	}
}

// Property: appending N >> depth samples yields the newest samples
// oldest-first with no duplicates — under both the depth-bounded History
// view and the full tsdb tail.
func TestQuickHistoryWraparound(t *testing.T) {
	f := func(extra uint16) bool {
		s := NewStoreWith(StoreOptions{ChunkSize: 32})
		n := HistoryDepth + 1 + int(extra)%1000
		for i := 1; i <= n; i++ {
			s.Update(reportAt("alan", uint64(i), float64(i)))
		}
		// Default view: exactly the newest HistoryDepth, oldest first.
		view := s.History("alan", metrics.LOADAVG, 0)
		if len(view) != HistoryDepth {
			return false
		}
		for i, sample := range view {
			if sample.Value != float64(n-HistoryDepth+1+i) {
				return false
			}
		}
		// Full tsdb tail: every sample exactly once, strictly increasing.
		full := s.TSDB().Tail("alan/loadavg", 0)
		if len(full) != n {
			return false
		}
		for i := 1; i < len(full); i++ {
			if full[i].T <= full[i-1].T || full[i].V != full[i-1].V+1 {
				return false
			}
		}
		return full[len(full)-1].V == float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDurableStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{DataDir: dir}
	s, err := OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	if !s.Persistent() {
		t.Fatal("store with DataDir not persistent")
	}
	if st := s.PersistStats(); st.WALAppends != 20 {
		t.Fatalf("WALAppends = %d, want 20", st.WALAppends)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Updates after Close keep the latest-value map live but skip history.
	s.Update(reportAt("alan", 21, 21))
	if v, ok := s.Value("alan", metrics.LOADAVG); !ok || v != 21 {
		t.Fatalf("latest value after close = %v, %v", v, ok)
	}

	re, err := OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	h := re.History("alan", metrics.LOADAVG, 0)
	if len(h) != 20 {
		t.Fatalf("recovered history length = %d, want 20", len(h))
	}
	for i, sample := range h {
		if sample.Value != float64(i+1) {
			t.Fatalf("recovered history = %v, want 1..20", h)
		}
	}
	// The recovered store answers queries and keeps accumulating.
	out, err := re.Query("alan", "max loadavg")
	if err != nil || !strings.Contains(out, "value 20") {
		t.Fatalf("query after recovery = %q, %v", out, err)
	}
	re.Update(reportAt("alan", 30, 30))
	if h := re.History("alan", metrics.LOADAVG, 1); len(h) != 1 || h[0].Value != 30 {
		t.Fatalf("append after recovery = %v", h)
	}
}

func TestDurableStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{DataDir: dir}
	s, err := OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	// No Close: the process dies. Default cadence fsyncs every record.
	re, err := OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.PersistStats(); st.RecordsReplayed != 7 {
		t.Fatalf("RecordsReplayed = %d, want 7: %+v", st.RecordsReplayed, st)
	}
	if h := re.History("alan", metrics.LOADAVG, 0); len(h) != 7 {
		t.Fatalf("recovered history length = %d, want 7", len(h))
	}
}

package dmon

import (
	"testing"
	"testing/quick"
	"time"

	"dproc/internal/clock"
	"dproc/internal/metrics"
)

func reportAt(node string, seq uint64, value float64) *metrics.Report {
	ts := clock.Epoch.Add(time.Duration(seq) * time.Second)
	return &metrics.Report{
		Node: node, Seq: seq, Time: ts,
		Samples: []metrics.Sample{{ID: metrics.LOADAVG, Value: value, Time: ts}},
	}
}

func TestHistoryAccumulatesInOrder(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 5; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	h := s.History("alan", metrics.LOADAVG, 0)
	if len(h) != 5 {
		t.Fatalf("history length = %d", len(h))
	}
	for i, sample := range h {
		if sample.Value != float64(i+1) {
			t.Fatalf("history = %v, want oldest-first 1..5", h)
		}
	}
	// A bounded request returns the most recent n.
	h2 := s.History("alan", metrics.LOADAVG, 2)
	if len(h2) != 2 || h2[0].Value != 4 || h2[1].Value != 5 {
		t.Fatalf("History(2) = %v", h2)
	}
}

func TestHistoryRingWrapsAtDepth(t *testing.T) {
	s := NewStore()
	total := HistoryDepth + 17
	for i := 1; i <= total; i++ {
		s.Update(reportAt("alan", uint64(i), float64(i)))
	}
	h := s.History("alan", metrics.LOADAVG, 0)
	if len(h) != HistoryDepth {
		t.Fatalf("history length = %d, want %d", len(h), HistoryDepth)
	}
	// Oldest retained is total-HistoryDepth+1.
	if h[0].Value != float64(total-HistoryDepth+1) || h[len(h)-1].Value != float64(total) {
		t.Fatalf("history range = [%g, %g]", h[0].Value, h[len(h)-1].Value)
	}
}

func TestHistoryMissingNodeOrMetric(t *testing.T) {
	s := NewStore()
	if h := s.History("ghost", metrics.LOADAVG, 0); h != nil {
		t.Fatalf("history for unknown node = %v", h)
	}
	s.Update(reportAt("alan", 1, 1))
	if h := s.History("alan", metrics.FREEMEM, 0); h != nil {
		t.Fatalf("history for unreported metric = %v", h)
	}
}

func TestHistoryForgottenWithNode(t *testing.T) {
	s := NewStore()
	s.Update(reportAt("alan", 1, 1))
	s.Forget("alan")
	if h := s.History("alan", metrics.LOADAVG, 0); h != nil {
		t.Fatal("history survived Forget")
	}
}

// Property: for any sequence of pushes, the ring holds the most recent
// min(len, depth) values in order.
func TestQuickRingSemantics(t *testing.T) {
	f := func(values []float64) bool {
		var r ring
		for i, v := range values {
			r.push(metrics.Sample{ID: metrics.LOADAVG, Value: v, Time: clock.Epoch.Add(time.Duration(i))})
		}
		want := values
		if len(want) > HistoryDepth {
			want = want[len(want)-HistoryDepth:]
		}
		got := r.slice(0)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			gv, wv := got[i].Value, want[i]
			if gv != wv && !(gv != gv && wv != wv) { // NaN-safe
				return false
			}
		}
		// Partial reads return suffixes.
		if len(want) >= 3 {
			part := r.slice(3)
			if len(part) != 3 || (part[2].Value != want[len(want)-1] && part[2].Value == part[2].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package dmon

import (
	"strings"
	"testing"
	"time"

	"dproc/internal/clock"
	"dproc/internal/metrics"
	"dproc/internal/simres"
)

// simNode bundles a virtual clock, a simulated host and its d-mon.
type simNode struct {
	clk  *clock.Virtual
	host *simres.Host
	d    *DMon
}

func newSimNode(t *testing.T, name string) *simNode {
	t.Helper()
	clk := clock.NewVirtual(clock.Epoch)
	host := simres.NewHost(name, clk, 1)
	host.SetNoise(0)
	return &simNode{clk: clk, host: host, d: New(name, clk, host)}
}

func TestStandardModulesRegistered(t *testing.T) {
	n := newSimNode(t, "alan")
	mods := n.d.Modules()
	want := []string{"CPU_MON", "MEM_MON", "DISK_MON", "NET_MON", "PMC"}
	if len(mods) != len(want) {
		t.Fatalf("modules = %v", mods)
	}
	for i, m := range want {
		if mods[i] != m {
			t.Fatalf("modules = %v, want %v", mods, want)
		}
	}
}

// standardMetricCount is what the five standard modules collect: everything
// except the Power metrics, whose module is deployed dynamically.
var standardMetricCount = int(metrics.NumIDs) - len(metrics.IDsForResource(metrics.Power))

func TestCollectDueGathersAllStandardMetricsInitially(t *testing.T) {
	n := newSimNode(t, "alan")
	samples := n.d.CollectDue(n.clk.Now())
	if len(samples) != standardMetricCount {
		t.Fatalf("collected %d samples, want %d (all standard metrics)", len(samples), standardMetricCount)
	}
	seen := map[metrics.ID]bool{}
	for _, s := range samples {
		seen[s.ID] = true
	}
	if len(seen) != standardMetricCount {
		t.Fatal("duplicate or missing metric IDs in collection")
	}
}

func TestPowerModuleDeployedDynamically(t *testing.T) {
	// The paper's mobile-device scenario: battery monitoring arrives as a
	// dynamically registered module, then behaves like any other.
	n := newSimNode(t, "ipaq")
	n.host.EnableBattery(20, 2, 1) // 20 Wh, 2 W idle, +1 W per load unit
	n.d.Register(PowerModule(n.host))
	samples := n.d.CollectDue(n.clk.Now())
	var battery, draw *metrics.Sample
	for i := range samples {
		switch samples[i].ID {
		case metrics.BATTERY:
			battery = &samples[i]
		case metrics.POWERDRAW:
			draw = &samples[i]
		}
	}
	if battery == nil || draw == nil {
		t.Fatal("power metrics not collected after dynamic registration")
	}
	if battery.Value != 100 {
		t.Fatalf("fresh battery = %g%%", battery.Value)
	}
	if draw.Value != 2 {
		t.Fatalf("idle draw = %gW, want 2", draw.Value)
	}
	// Ten simulated hours of heavy load drain the battery measurably.
	n.host.AddTask(4)
	n.clk.Advance(10 * time.Hour)
	got := n.host.Sample(metrics.BATTERY)
	// 6 W for 10 h = 60 Wh on a 20 Wh battery: fully drained.
	if got != 0 {
		t.Fatalf("battery after 10h at 6W = %g%%, want 0", got)
	}
	// A threshold can gate reporting on low battery, as a power-aware
	// application would configure.
	if err := n.d.ApplyControlText("threshold battery below 20"); err != nil {
		t.Fatal(err)
	}
	sent := n.d.FilterSamples(n.clk.Now(), n.d.CollectDue(n.clk.Now()))
	found := false
	for _, s := range sent {
		if s.ID == metrics.BATTERY {
			found = true
		}
	}
	if !found {
		t.Fatal("drained battery not reported despite below-20 threshold")
	}
}

func TestPeriodGatesCollection(t *testing.T) {
	n := newSimNode(t, "alan")
	if err := n.d.SetPeriod(metrics.CPU, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// First collection: everything due.
	if s := n.d.CollectDue(n.clk.Now()); len(s) == 0 {
		t.Fatal("initial collection empty")
	}
	// One second later: CPU not due (2 s period), others due (1 s).
	n.clk.Advance(time.Second)
	s := n.d.CollectDue(n.clk.Now())
	for _, sample := range s {
		if sample.ID.Resource() == metrics.CPU {
			t.Fatalf("CPU metric %v collected before its 2s period elapsed", sample.ID)
		}
	}
	if len(s) == 0 {
		t.Fatal("non-CPU resources should still be due")
	}
	// Another second: CPU due again.
	n.clk.Advance(time.Second)
	s = n.d.CollectDue(n.clk.Now())
	foundCPU := false
	for _, sample := range s {
		if sample.ID == metrics.LOADAVG {
			foundCPU = true
		}
	}
	if !foundCPU {
		t.Fatal("CPU metrics missing after period elapsed")
	}
}

func TestSetPeriodValidation(t *testing.T) {
	n := newSimNode(t, "alan")
	if err := n.d.SetPeriod(metrics.CPU, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if err := n.d.SetPeriod(metrics.Resource(99), time.Second); err == nil {
		t.Fatal("bad resource accepted")
	}
	if err := n.d.SetPeriod(metrics.CPU, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if n.d.Period(metrics.CPU) != 3*time.Second {
		t.Fatal("period not stored")
	}
}

func TestDifferentialSuppressesUnchangedValues(t *testing.T) {
	n := newSimNode(t, "alan")
	n.d.SetDifferential(15)
	now := n.clk.Now()
	// First poll: nothing ever sent, values are fresh → everything passes
	// (lastSent is 0, values nonzero).
	s1 := n.d.FilterSamples(now, n.d.CollectDue(now))
	if len(s1) == 0 {
		t.Fatal("first poll sent nothing")
	}
	// Second poll with identical values: all suppressed.
	n.clk.Advance(time.Second)
	now = n.clk.Now()
	s2 := n.d.FilterSamples(now, n.d.CollectDue(now))
	if len(s2) != 0 {
		t.Fatalf("unchanged values passed the 15%% differential: %d samples", len(s2))
	}
	// Load jumps from 0 to 4: loadavg and dependent metrics now pass.
	n.host.AddTask(4)
	n.clk.Advance(time.Second)
	now = n.clk.Now()
	s3 := n.d.FilterSamples(now, n.d.CollectDue(now))
	var ids []string
	foundLoad := false
	for _, s := range s3 {
		ids = append(ids, s.ID.String())
		if s.ID == metrics.LOADAVG {
			foundLoad = true
		}
	}
	if !foundLoad {
		t.Fatalf("loadavg change not sent; sent: %v", ids)
	}
}

func TestThresholdAboveGatesMetric(t *testing.T) {
	n := newSimNode(t, "alan")
	// Paper's example: report load average only when above 2.
	if err := n.d.AddThreshold(Threshold{Metric: metrics.LOADAVG, Kind: Above, A: 2}); err != nil {
		t.Fatal(err)
	}
	now := n.clk.Now()
	sent := n.d.FilterSamples(now, n.d.CollectDue(now))
	for _, s := range sent {
		if s.ID == metrics.LOADAVG {
			t.Fatal("idle loadavg (0) sent despite above-2 threshold")
		}
	}
	// Other CPU metrics are not gated by the loadavg-specific threshold.
	foundRunq := false
	for _, s := range sent {
		if s.ID == metrics.RUNQUEUE {
			foundRunq = true
		}
	}
	if !foundRunq {
		t.Fatal("metric-specific threshold wrongly gated sibling metrics")
	}
	// Load rises above 2 → loadavg passes.
	n.host.AddTask(3)
	n.clk.Advance(time.Second)
	now = n.clk.Now()
	sent = n.d.FilterSamples(now, n.d.CollectDue(now))
	found := false
	for _, s := range sent {
		if s.ID == metrics.LOADAVG && s.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("loadavg=3 not sent with above-2 threshold")
	}
}

func TestPeriodPlusThresholdCombination(t *testing.T) {
	// The paper: "update the CPU information once every 2 seconds IF the
	// CPU utilization is above 80%".
	n := newSimNode(t, "alan")
	if err := n.d.ApplyControlText("period cpu 2\nthreshold loadavg above 0.8"); err != nil {
		t.Fatal(err)
	}
	n.host.AddTask(1) // load 1.0 > 0.8
	sentTimes := 0
	for i := 0; i < 6; i++ {
		now := n.clk.Now()
		sent := n.d.FilterSamples(now, n.d.CollectDue(now))
		for _, s := range sent {
			if s.ID == metrics.LOADAVG {
				sentTimes++
			}
		}
		n.clk.Advance(time.Second)
	}
	if sentTimes != 3 { // every 2 s over 6 s
		t.Fatalf("loadavg sent %d times in 6s with 2s period, want 3", sentTimes)
	}
}

func TestDeployFilterPaperFigure3(t *testing.T) {
	n := newSimNode(t, "alan")
	filterSrc := `
{
  int i = 0;
  if(input[LOADAVG].value > 2){
    output[i] = input[LOADAVG];
    i = i + 1;
  }
  if(input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6){
    output[i] = input[DISKUSAGE];
    i = i + 1;
    output[i] = input[FREEMEM];
    i = i + 1;
  }
  if(input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent){
    output[i] = input[CACHE_MISS];
    i = i + 1;
  }
}`
	if err := n.d.DeployFilter(0, true, filterSrc); err != nil {
		t.Fatal(err)
	}
	if !n.d.HasFilter() {
		t.Fatal("HasFilter = false after deploy")
	}
	// Idle host: loadavg 0, disk quiet, cache misses rising from 0 (last
	// sent 0, current positive) → only CACHE_MISS emitted.
	now := n.clk.Now()
	sent := n.d.FilterSamples(now, n.d.CollectDue(now))
	if len(sent) != 1 || sent[0].ID != metrics.CACHE_MISS {
		ids := []string{}
		for _, s := range sent {
			ids = append(ids, s.ID.String())
		}
		t.Fatalf("filter output = %v, want [cache_miss]", ids)
	}
	// Load the host: loadavg passes too.
	n.host.AddTask(3)
	n.clk.Advance(time.Second)
	now = n.clk.Now()
	sent = n.d.FilterSamples(now, n.d.CollectDue(now))
	var got []metrics.ID
	for _, s := range sent {
		got = append(got, s.ID)
	}
	wantLoad := false
	for _, id := range got {
		if id == metrics.LOADAVG {
			wantLoad = true
		}
	}
	if !wantLoad {
		t.Fatalf("loaded host output = %v, missing loadavg", got)
	}
}

func TestDeployFilterCompileErrorKeepsOld(t *testing.T) {
	n := newSimNode(t, "alan")
	good := "output[0] = input[LOADAVG];"
	if err := n.d.DeployFilter(0, true, good); err != nil {
		t.Fatal(err)
	}
	if err := n.d.DeployFilter(0, true, "$$$ garbage"); err == nil {
		t.Fatal("bad filter accepted")
	}
	if !n.d.HasFilter() {
		t.Fatal("failed deploy removed the working filter")
	}
	// Remove with empty source.
	if err := n.d.DeployFilter(0, true, ""); err != nil {
		t.Fatal(err)
	}
	if n.d.HasFilter() {
		t.Fatal("empty source did not remove filter")
	}
}

func TestPerResourceFilterScoping(t *testing.T) {
	n := newSimNode(t, "alan")
	// CPU filter passes loadavg only when above 10 — idle host blocks it;
	// other resources flow untouched.
	if err := n.d.DeployFilter(metrics.CPU, false,
		"if (input[LOADAVG].value > 10) { output[0] = input[LOADAVG]; }"); err != nil {
		t.Fatal(err)
	}
	now := n.clk.Now()
	sent := n.d.FilterSamples(now, n.d.CollectDue(now))
	var cpu, mem int
	for _, s := range sent {
		switch s.ID.Resource() {
		case metrics.CPU:
			cpu++
		case metrics.Memory:
			mem++
		}
	}
	if cpu != 0 {
		t.Fatalf("CPU filter leaked %d samples", cpu)
	}
	if mem == 0 {
		t.Fatal("memory metrics blocked by CPU-scoped filter")
	}
	// A filter writing out-of-scope metrics is clipped to its resource.
	if err := n.d.DeployFilter(metrics.CPU, false,
		"output[0] = input[FREEMEM];"); err != nil {
		t.Fatal(err)
	}
	n.clk.Advance(time.Second)
	now = n.clk.Now()
	sent = n.d.FilterSamples(now, n.d.CollectDue(now))
	for _, s := range sent {
		if s.ID == metrics.FREEMEM {
			// FREEMEM must appear exactly once (from MEM_MON pass-through),
			// not duplicated by the CPU filter.
			continue
		}
	}
	count := 0
	for _, s := range sent {
		if s.ID == metrics.FREEMEM {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("FREEMEM appeared %d times, want 1 (filter output clipped to scope)", count)
	}
}

func TestFilterRuntimeErrorFallsBackUnfiltered(t *testing.T) {
	n := newSimNode(t, "alan")
	// Filter with an out-of-bounds access fails at run time.
	if err := n.d.DeployFilter(0, true, "output[0] = input[9999];"); err != nil {
		t.Fatal(err)
	}
	now := n.clk.Now()
	sent := n.d.FilterSamples(now, n.d.CollectDue(now))
	if len(sent) != standardMetricCount {
		t.Fatalf("fallback sent %d samples, want all %d", len(sent), standardMetricCount)
	}
	if n.d.FilterErrors() == 0 {
		t.Fatal("filter error not counted")
	}
}

func TestLastSentTracking(t *testing.T) {
	n := newSimNode(t, "alan")
	n.host.AddTask(2)
	now := n.clk.Now()
	sent := n.d.FilterSamples(now, n.d.CollectDue(now))
	if len(sent) == 0 {
		t.Fatal("nothing sent")
	}
	// Next collection must carry the previous values as LastSent.
	n.clk.Advance(time.Second)
	samples := n.d.CollectDue(n.clk.Now())
	for _, s := range samples {
		if s.ID == metrics.LOADAVG && s.LastSent != 2 {
			t.Fatalf("LOADAVG LastSent = %g, want 2", s.LastSent)
		}
	}
}

func TestBuildReportPadding(t *testing.T) {
	n := newSimNode(t, "alan")
	n.d.SetPadding(5000)
	r := n.d.BuildReport(n.clk.Now(), []metrics.Sample{{ID: metrics.LOADAVG, Value: 1}})
	if len(r.Padding) != 5000 {
		t.Fatalf("padding = %d", len(r.Padding))
	}
	if r.Size() < 5000 {
		t.Fatalf("report size = %d, want >= 5000 (Figure 7's 5KB events)", r.Size())
	}
	n.d.SetPadding(-1)
	r2 := n.d.BuildReport(n.clk.Now(), nil)
	if len(r2.Padding) != 0 {
		t.Fatal("negative padding not clamped")
	}
	if r2.Seq != r.Seq+1 {
		t.Fatalf("seq = %d after %d", r2.Seq, r.Seq)
	}
}

func TestPollOnceWithoutChannel(t *testing.T) {
	n := newSimNode(t, "alan")
	report, sent, err := n.d.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || sent != 0 {
		t.Fatalf("report=%v sent=%d", report, sent)
	}
	// Immediately again: nothing due.
	report, _, err = n.d.PollOnce()
	if err != nil || report != nil {
		t.Fatalf("second poll: report=%v err=%v", report, err)
	}
}

func TestApplyControlTextFullSession(t *testing.T) {
	n := newSimNode(t, "alan")
	text := strings.Join([]string{
		"period disk 4",
		"diff net 10",
		"threshold loadavg above 1",
		"filter all",
		"output[0] = input[LOADAVG];",
	}, "\n")
	if err := n.d.ApplyControlText(text); err != nil {
		t.Fatal(err)
	}
	if n.d.Period(metrics.Disk) != 4*time.Second {
		t.Fatal("period not applied")
	}
	if !n.d.HasFilter() {
		t.Fatal("filter not applied")
	}
	if err := n.d.ApplyControlText("bogus"); err == nil {
		t.Fatal("bad control text accepted")
	}
}

func TestControlEncodingRoundTrip(t *testing.T) {
	payload := EncodeControl("maui", "period cpu 2")
	target, text, err := DecodeControl(payload)
	if err != nil || target != "maui" || text != "period cpu 2" {
		t.Fatalf("decoded (%q, %q, %v)", target, text, err)
	}
	if _, _, err := DecodeControl([]byte{1, 2}); err == nil {
		t.Fatal("garbage control payload accepted")
	}
}

func TestStoreUpdateAndQuery(t *testing.T) {
	s := NewStore()
	ts := clock.Epoch
	s.Update(&metrics.Report{
		Node: "maui", Seq: 1, Time: ts,
		Samples: []metrics.Sample{
			{ID: metrics.LOADAVG, Value: 1.5, Time: ts},
			{ID: metrics.FREEMEM, Value: 100e6, Time: ts},
		},
	})
	s.Update(&metrics.Report{
		Node: "maui", Seq: 2, Time: ts.Add(time.Second),
		Samples: []metrics.Sample{{ID: metrics.LOADAVG, Value: 2.5, Time: ts.Add(time.Second)}},
	})
	if v, ok := s.Value("maui", metrics.LOADAVG); !ok || v != 2.5 {
		t.Fatalf("Value = (%g, %v)", v, ok)
	}
	if v, ok := s.Value("maui", metrics.FREEMEM); !ok || v != 100e6 {
		t.Fatalf("older metric lost: (%g, %v)", v, ok)
	}
	if _, ok := s.Value("maui", metrics.NETRTT); ok {
		t.Fatal("absent metric reported present")
	}
	if _, ok := s.Value("etna", metrics.LOADAVG); ok {
		t.Fatal("absent node reported present")
	}
	nodes := s.Nodes()
	if len(nodes) != 1 || nodes[0] != "maui" {
		t.Fatalf("Nodes = %v", nodes)
	}
	ids := s.Metrics("maui")
	if len(ids) != 2 || ids[0] != metrics.LOADAVG || ids[1] != metrics.FREEMEM {
		t.Fatalf("Metrics = %v", ids)
	}
	last, count := s.LastReport("maui")
	if count != 2 || !last.Equal(ts.Add(time.Second)) {
		t.Fatalf("LastReport = (%v, %d)", last, count)
	}
	s.Forget("maui")
	if len(s.Nodes()) != 0 {
		t.Fatal("Forget did not remove node")
	}
}

func TestDynamicModuleRegistration(t *testing.T) {
	// The paper: new monitoring modules (e.g. battery power) can be added at
	// run time without restarting dproc.
	n := newSimNode(t, "alan")
	battery := 95.0
	n.d.Register(&Module{
		Name:     "BATTERY_MON",
		Resource: metrics.PMC, // piggybacks on an existing resource class
		Collect: func(now time.Time) []metrics.Sample {
			return []metrics.Sample{{ID: metrics.CYCLES, Value: battery, Time: now}}
		},
	})
	if len(n.d.Modules()) != 6 {
		t.Fatalf("modules = %v", n.d.Modules())
	}
	samples := n.d.CollectDue(n.clk.Now())
	count := 0
	for _, s := range samples {
		if s.ID == metrics.CYCLES {
			count++
		}
	}
	if count != 2 { // one from PMC, one from BATTERY_MON
		t.Fatalf("CYCLES sampled %d times, want 2", count)
	}
}

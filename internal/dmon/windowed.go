package dmon

import (
	"sync"
	"time"

	"dproc/internal/clock"
	"dproc/internal/metrics"
)

// WindowedCPU reproduces the paper's CPU_MON precisely: a standard system
// reports load averages over fixed 1/5/15-minute windows, which "may not be
// useful in a fast system with constantly varying CPU load", so dproc's
// module runs its own sampling thread that examines the run queue
// periodically and computes the average over an *application-specified*
// window. Here the kernel thread is a rescheduling clock timer, so it works
// identically under the real and the virtual clock.
type WindowedCPU struct {
	clk clock.Clock
	src Source

	mu          sync.Mutex
	sampleEvery time.Duration
	window      time.Duration
	samples     []timedSample // bounded by window / sampleEvery
	timer       clock.Timer
	closed      bool
}

type timedSample struct {
	at time.Time
	v  float64
}

// DefaultCPUWindow is the paper's default averaging period (1 minute).
const DefaultCPUWindow = time.Minute

// NewWindowedCPU starts the sampling thread. sampleEvery controls how often
// the run queue is examined; window is the averaging period (0 selects the
// 1-minute default).
func NewWindowedCPU(clk clock.Clock, src Source, sampleEvery, window time.Duration) *WindowedCPU {
	if sampleEvery <= 0 {
		sampleEvery = time.Second
	}
	if window <= 0 {
		window = DefaultCPUWindow
	}
	w := &WindowedCPU{clk: clk, src: src, sampleEvery: sampleEvery, window: window}
	w.sample() // take an initial sample so the module is never empty
	w.schedule()
	return w
}

func (w *WindowedCPU) schedule() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.timer = w.clk.AfterFunc(w.sampleEvery, func() {
		w.sample()
		w.schedule()
	})
}

func (w *WindowedCPU) sample() {
	now := w.clk.Now()
	v := w.src.Sample(metrics.RUNQUEUE)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples = append(w.samples, timedSample{at: now, v: v})
	w.pruneLocked(now)
}

func (w *WindowedCPU) pruneLocked(now time.Time) {
	cutoff := now.Add(-w.window)
	i := 0
	for i < len(w.samples) && w.samples[i].at.Before(cutoff) {
		i++
	}
	if i > 0 {
		w.samples = append(w.samples[:0], w.samples[i:]...)
	}
}

// SetWindow changes the averaging period at run time — the knob the paper
// exposes through the control file ("the default period is 1 minute...
// d-mon can change this value").
func (w *WindowedCPU) SetWindow(d time.Duration) {
	if d <= 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.window = d
	w.pruneLocked(w.clk.Now())
}

// Window returns the current averaging period.
func (w *WindowedCPU) Window() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.window
}

// Average returns the mean run-queue length over the window.
func (w *WindowedCPU) Average() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pruneLocked(w.clk.Now())
	if len(w.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range w.samples {
		sum += s.v
	}
	return sum / float64(len(w.samples))
}

// Close stops the sampling thread.
func (w *WindowedCPU) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.timer != nil {
		w.timer.Stop()
	}
}

// Module adapts the windowed sampler to a d-mon monitoring module: LOADAVG
// becomes the windowed average, RUNQUEUE stays instantaneous.
func (w *WindowedCPU) Module() *Module {
	return &Module{
		Name:     "CPU_MON",
		Resource: metrics.CPU,
		Collect: func(now time.Time) []metrics.Sample {
			return []metrics.Sample{
				{ID: metrics.LOADAVG, Value: w.Average(), Time: now},
				{ID: metrics.RUNQUEUE, Value: w.src.Sample(metrics.RUNQUEUE), Time: now},
			}
		},
	}
}

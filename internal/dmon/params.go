// Package dmon implements d-mon, the distributed monitor module at the
// heart of dproc (Figure 2 of the paper). d-mon maintains the registered
// monitoring modules (CPU_MON, MEM_MON, DISK_MON, NET_MON, PMC), polls them
// at configurable periods, applies threshold parameters and dynamically
// deployed E-code filters to decide what to publish, submits the surviving
// samples to the KECho monitoring channel, and folds reports received from
// remote d-mons into a store that backs the /proc/cluster hierarchy.
package dmon

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"dproc/internal/metrics"
)

// ThresholdKind enumerates the paper's threshold comparison forms:
// percentage variation from the last sent value, upper/lower bounds, and
// min/max ranges.
type ThresholdKind int

// Threshold kinds.
const (
	// DiffPercent sends only if the value varies by at least A percent from
	// the last value sent (the paper's "differential filter").
	DiffPercent ThresholdKind = iota
	// Above sends only while the value exceeds A.
	Above
	// Below sends only while the value is less than A.
	Below
	// InRange sends only while A <= value <= B.
	InRange
	// OutOfRange sends only while the value is outside [A, B].
	OutOfRange
)

var thresholdNames = map[ThresholdKind]string{
	DiffPercent: "diff", Above: "above", Below: "below",
	InRange: "inrange", OutOfRange: "outrange",
}

// String names the threshold kind as used in control files.
func (k ThresholdKind) String() string {
	if s, ok := thresholdNames[k]; ok {
		return s
	}
	return fmt.Sprintf("threshold(%d)", int(k))
}

// AnyMetric marks a threshold that gates every metric of its resource
// (used by the differential filter, which applies across the board).
const AnyMetric metrics.ID = -1

// Threshold is one send-gating condition on a metric. Metric == AnyMetric
// applies the condition to all metrics of the resource it is installed on.
type Threshold struct {
	Metric metrics.ID
	Kind   ThresholdKind
	A, B   float64
}

// AppliesTo reports whether the threshold gates the given metric.
func (t Threshold) AppliesTo(id metrics.ID) bool {
	return t.Metric == AnyMetric || t.Metric == id
}

// Pass reports whether a sample with the given current and last-sent values
// satisfies the threshold (i.e. should be sent).
func (t Threshold) Pass(value, lastSent float64) bool {
	switch t.Kind {
	case DiffPercent:
		if lastSent == 0 {
			return value != 0
		}
		return math.Abs(value-lastSent) >= t.A/100*math.Abs(lastSent)
	case Above:
		return value > t.A
	case Below:
		return value < t.A
	case InRange:
		return value >= t.A && value <= t.B
	case OutOfRange:
		return value < t.A || value > t.B
	}
	return true
}

// ResourceConfig holds the tunable parameters for one resource class, as
// written through its control file.
type ResourceConfig struct {
	// Period is the update period; monitoring data for this resource is
	// collected and considered for sending once per period.
	Period time.Duration
	// Thresholds all must pass for a metric of this resource to be sent
	// (the paper's "update every 2 seconds IF utilization is above 80%").
	Thresholds []Threshold
}

// DefaultPeriod is the paper's default 1-second update period.
const DefaultPeriod = time.Second

// Command is one parsed control-file directive.
type Command struct {
	// Kind is one of "period", "diff", "threshold", "clear", "filter".
	Kind string
	// Resource is the target resource class (period/diff/clear, and filter
	// scope; FilterAll means the filter applies to all resources).
	Resource metrics.Resource
	// AllResources marks commands addressed to every resource.
	AllResources bool
	// Threshold carries the parsed threshold for "threshold" commands.
	Threshold Threshold
	// Period carries the parsed period for "period" commands.
	Period time.Duration
	// Source carries E-code text for "filter" commands.
	Source string
}

// ParseControl parses the text written to a control file into commands.
// Grammar (one command per line; '#' starts a comment):
//
//	period <resource> <seconds>
//	diff <resource> <percent>
//	threshold <metric> above|below <x>
//	threshold <metric> inrange|outrange <lo> <hi>
//	clear <resource|all>
//	filter <resource|all>
//	<E-code source on the remaining lines>
//
// The filter command consumes the rest of the input as filter source, since
// E-code bodies span multiple lines.
func ParseControl(text string) ([]Command, error) {
	var cmds []Command
	lines := strings.Split(text, "\n")
	for li := 0; li < len(lines); li++ {
		line := strings.TrimSpace(lines[li])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "period":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dmon: usage: period <resource> <seconds> (line %d)", li+1)
			}
			res, err := parseResource(fields[1], li)
			if err != nil {
				return nil, err
			}
			secs, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || secs <= 0 {
				return nil, fmt.Errorf("dmon: bad period %q (line %d)", fields[2], li+1)
			}
			cmds = append(cmds, Command{
				Kind: "period", Resource: res.r, AllResources: res.all,
				Period: time.Duration(secs * float64(time.Second)),
			})
		case "diff":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dmon: usage: diff <resource> <percent> (line %d)", li+1)
			}
			res, err := parseResource(fields[1], li)
			if err != nil {
				return nil, err
			}
			pct, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || pct < 0 {
				return nil, fmt.Errorf("dmon: bad percent %q (line %d)", fields[2], li+1)
			}
			cmds = append(cmds, Command{
				Kind: "diff", Resource: res.r, AllResources: res.all,
				Threshold: Threshold{Metric: AnyMetric, Kind: DiffPercent, A: pct},
			})
		case "threshold":
			if len(fields) < 4 {
				return nil, fmt.Errorf("dmon: usage: threshold <metric> <kind> <values> (line %d)", li+1)
			}
			id, ok := metrics.ParseID(fields[1])
			if !ok {
				return nil, fmt.Errorf("dmon: unknown metric %q (line %d)", fields[1], li+1)
			}
			th := Threshold{Metric: id}
			switch fields[2] {
			case "above", "below":
				if len(fields) != 4 {
					return nil, fmt.Errorf("dmon: %s takes one value (line %d)", fields[2], li+1)
				}
				v, err := strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("dmon: bad value %q (line %d)", fields[3], li+1)
				}
				th.A = v
				if fields[2] == "above" {
					th.Kind = Above
				} else {
					th.Kind = Below
				}
			case "inrange", "outrange":
				if len(fields) != 5 {
					return nil, fmt.Errorf("dmon: %s takes two values (line %d)", fields[2], li+1)
				}
				lo, err1 := strconv.ParseFloat(fields[3], 64)
				hi, err2 := strconv.ParseFloat(fields[4], 64)
				if err1 != nil || err2 != nil || lo > hi {
					return nil, fmt.Errorf("dmon: bad range (line %d)", li+1)
				}
				th.A, th.B = lo, hi
				if fields[2] == "inrange" {
					th.Kind = InRange
				} else {
					th.Kind = OutOfRange
				}
			default:
				return nil, fmt.Errorf("dmon: unknown threshold kind %q (line %d)", fields[2], li+1)
			}
			cmds = append(cmds, Command{Kind: "threshold", Resource: id.Resource(), Threshold: th})
		case "clear":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dmon: usage: clear <resource|all> (line %d)", li+1)
			}
			res, err := parseResource(fields[1], li)
			if err != nil {
				return nil, err
			}
			cmds = append(cmds, Command{Kind: "clear", Resource: res.r, AllResources: res.all})
		case "filter":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dmon: usage: filter <resource|all>\\n<code> (line %d)", li+1)
			}
			res, err := parseResource(fields[1], li)
			if err != nil {
				return nil, err
			}
			source := strings.Join(lines[li+1:], "\n")
			if strings.TrimSpace(source) == "" {
				return nil, fmt.Errorf("dmon: filter command without code (line %d)", li+1)
			}
			cmds = append(cmds, Command{
				Kind: "filter", Resource: res.r, AllResources: res.all, Source: source,
			})
			return cmds, nil // filter consumes the rest
		default:
			return nil, fmt.Errorf("dmon: unknown command %q (line %d)", fields[0], li+1)
		}
	}
	return cmds, nil
}

type resourceArg struct {
	r   metrics.Resource
	all bool
}

func parseResource(s string, line int) (resourceArg, error) {
	if s == "all" {
		return resourceArg{all: true}, nil
	}
	r, ok := metrics.ParseResource(s)
	if !ok {
		return resourceArg{}, fmt.Errorf("dmon: unknown resource %q (line %d)", s, line+1)
	}
	return resourceArg{r: r}, nil
}

package dmon

import (
	"strings"
	"testing"
	"time"

	"dproc/internal/metrics"
)

func TestThresholdPass(t *testing.T) {
	cases := []struct {
		name     string
		th       Threshold
		value    float64
		lastSent float64
		want     bool
	}{
		{"diff above pct", Threshold{Kind: DiffPercent, A: 15}, 115, 100, true},
		{"diff below pct", Threshold{Kind: DiffPercent, A: 15}, 110, 100, false},
		{"diff exact pct", Threshold{Kind: DiffPercent, A: 15}, 115.0, 100, true},
		{"diff downward", Threshold{Kind: DiffPercent, A: 15}, 80, 100, true},
		{"diff zero last, nonzero now", Threshold{Kind: DiffPercent, A: 15}, 5, 0, true},
		{"diff zero last, zero now", Threshold{Kind: DiffPercent, A: 15}, 0, 0, false},
		{"above true", Threshold{Kind: Above, A: 2}, 2.5, 0, true},
		{"above false", Threshold{Kind: Above, A: 2}, 2.0, 0, false},
		{"below true", Threshold{Kind: Below, A: 4}, 3, 0, true},
		{"below false", Threshold{Kind: Below, A: 4}, 4, 0, false},
		{"inrange inside", Threshold{Kind: InRange, A: 1, B: 3}, 2, 0, true},
		{"inrange edge", Threshold{Kind: InRange, A: 1, B: 3}, 3, 0, true},
		{"inrange outside", Threshold{Kind: InRange, A: 1, B: 3}, 4, 0, false},
		{"outrange outside", Threshold{Kind: OutOfRange, A: 1, B: 3}, 4, 0, true},
		{"outrange inside", Threshold{Kind: OutOfRange, A: 1, B: 3}, 2, 0, false},
	}
	for _, c := range cases {
		if got := c.th.Pass(c.value, c.lastSent); got != c.want {
			t.Errorf("%s: Pass(%g, %g) = %v, want %v", c.name, c.value, c.lastSent, got, c.want)
		}
	}
}

func TestThresholdAppliesTo(t *testing.T) {
	specific := Threshold{Metric: metrics.LOADAVG}
	if !specific.AppliesTo(metrics.LOADAVG) || specific.AppliesTo(metrics.FREEMEM) {
		t.Fatal("specific threshold scope wrong")
	}
	any := Threshold{Metric: AnyMetric}
	if !any.AppliesTo(metrics.LOADAVG) || !any.AppliesTo(metrics.CACHE_MISS) {
		t.Fatal("AnyMetric threshold scope wrong")
	}
}

func TestThresholdKindString(t *testing.T) {
	for k := DiffPercent; k <= OutOfRange; k++ {
		if strings.Contains(k.String(), "(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

func TestParseControlPeriod(t *testing.T) {
	cmds, err := ParseControl("period cpu 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 || cmds[0].Kind != "period" || cmds[0].Resource != metrics.CPU ||
		cmds[0].Period != 2*time.Second {
		t.Fatalf("cmds = %+v", cmds)
	}
	// Fractional seconds.
	cmds, err = ParseControl("period net 0.5")
	if err != nil || cmds[0].Period != 500*time.Millisecond {
		t.Fatalf("cmds=%+v err=%v", cmds, err)
	}
	// All resources.
	cmds, err = ParseControl("period all 3")
	if err != nil || !cmds[0].AllResources {
		t.Fatalf("cmds=%+v err=%v", cmds, err)
	}
}

func TestParseControlDiff(t *testing.T) {
	cmds, err := ParseControl("diff all 15")
	if err != nil {
		t.Fatal(err)
	}
	c := cmds[0]
	if c.Kind != "diff" || !c.AllResources || c.Threshold.Kind != DiffPercent ||
		c.Threshold.A != 15 || c.Threshold.Metric != AnyMetric {
		t.Fatalf("cmd = %+v", c)
	}
}

func TestParseControlThresholds(t *testing.T) {
	cmds, err := ParseControl("threshold loadavg above 2\nthreshold freemem below 50e6\nthreshold netbw inrange 0 1e6")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("got %d commands", len(cmds))
	}
	if cmds[0].Threshold.Kind != Above || cmds[0].Threshold.Metric != metrics.LOADAVG || cmds[0].Threshold.A != 2 {
		t.Fatalf("cmd0 = %+v", cmds[0])
	}
	if cmds[1].Threshold.Kind != Below || cmds[1].Threshold.A != 50e6 {
		t.Fatalf("cmd1 = %+v", cmds[1])
	}
	if cmds[2].Threshold.Kind != InRange || cmds[2].Threshold.B != 1e6 {
		t.Fatalf("cmd2 = %+v", cmds[2])
	}
	if cmds[2].Resource != metrics.Network {
		t.Fatalf("threshold resource = %v", cmds[2].Resource)
	}
}

func TestParseControlFilterConsumesRest(t *testing.T) {
	text := "period cpu 2\nfilter all\n{ int i = 0; output[i] = input[LOADAVG]; }"
	cmds, err := ParseControl(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 {
		t.Fatalf("got %d commands", len(cmds))
	}
	if cmds[1].Kind != "filter" || !cmds[1].AllResources {
		t.Fatalf("cmd = %+v", cmds[1])
	}
	if !strings.Contains(cmds[1].Source, "input[LOADAVG]") {
		t.Fatalf("filter source = %q", cmds[1].Source)
	}
}

func TestParseControlCommentsAndBlanks(t *testing.T) {
	cmds, err := ParseControl("# set things up\n\nperiod disk 5\n  # done\n")
	if err != nil || len(cmds) != 1 {
		t.Fatalf("cmds=%v err=%v", cmds, err)
	}
}

func TestParseControlErrors(t *testing.T) {
	bad := []string{
		"period cpu",          // missing value
		"period cpu zero",     // non-numeric
		"period cpu -1",       // non-positive
		"period gpu 1",        // unknown resource
		"diff cpu",            // missing pct
		"diff cpu -3",         // negative pct
		"threshold bogus above 1",      // unknown metric
		"threshold loadavg sideways 1", // unknown kind
		"threshold loadavg above",      // missing value
		"threshold loadavg above x",    // bad value
		"threshold loadavg inrange 5 1",// inverted range
		"threshold loadavg inrange 1",  // missing hi
		"clear",               // missing resource
		"clear gpu",           // unknown resource
		"filter all",          // no code follows
		"launch missiles",     // unknown command
	}
	for _, text := range bad {
		if _, err := ParseControl(text); err == nil {
			t.Errorf("ParseControl(%q) succeeded, want error", text)
		}
	}
}

func TestParseControlClear(t *testing.T) {
	cmds, err := ParseControl("clear mem")
	if err != nil || cmds[0].Kind != "clear" || cmds[0].Resource != metrics.Memory {
		t.Fatalf("cmds=%+v err=%v", cmds, err)
	}
	cmds, err = ParseControl("clear all")
	if err != nil || !cmds[0].AllResources {
		t.Fatalf("cmds=%+v err=%v", cmds, err)
	}
}

package dmon

import (
	"time"

	"dproc/internal/metrics"
)

// Source supplies current metric values; implemented by simres.Host for the
// simulated experiments and by the sysinfo adapter for live mode.
type Source interface {
	Sample(id metrics.ID) float64
}

// CollectFunc is the callback a monitoring module registers with d-mon (the
// paper's register service call). d-mon invokes it at the module's period
// to retrieve current samples.
type CollectFunc func(now time.Time) []metrics.Sample

// Module is one registered monitoring module.
type Module struct {
	// Name identifies the module (e.g. "CPU_MON").
	Name string
	// Resource is the resource class the module covers; its parameters and
	// control-file settings address the module through this.
	Resource metrics.Resource
	// Collect retrieves the module's current samples.
	Collect CollectFunc
}

// sourceModule builds a standard module that samples the given metric IDs
// from a Source.
func sourceModule(name string, resource metrics.Resource, src Source, ids []metrics.ID) *Module {
	return &Module{
		Name:     name,
		Resource: resource,
		Collect: func(now time.Time) []metrics.Sample {
			out := make([]metrics.Sample, 0, len(ids))
			for _, id := range ids {
				out = append(out, metrics.Sample{ID: id, Value: src.Sample(id), Time: now})
			}
			return out
		},
	}
}

// StandardModules returns the paper's five monitoring modules bound to a
// source: CPU_MON, MEM_MON, DISK_MON, NET_MON and PMC.
func StandardModules(src Source) []*Module {
	return []*Module{
		sourceModule("CPU_MON", metrics.CPU, src,
			[]metrics.ID{metrics.LOADAVG, metrics.RUNQUEUE}),
		sourceModule("MEM_MON", metrics.Memory, src,
			[]metrics.ID{metrics.FREEMEM, metrics.TOTALMEM}),
		sourceModule("DISK_MON", metrics.Disk, src,
			[]metrics.ID{metrics.DISKREADS, metrics.DISKWRITES, metrics.SECTORSREAD,
				metrics.SECTORSWRITTEN, metrics.DISKUSAGE}),
		sourceModule("NET_MON", metrics.Network, src,
			[]metrics.ID{metrics.NETBW, metrics.NETAVAIL, metrics.NETRTT,
				metrics.NETRETRANS, metrics.NETLOST, metrics.NETDELAY}),
		sourceModule("PMC", metrics.PMC, src,
			[]metrics.ID{metrics.CACHE_MISS, metrics.INSTRUCTIONS, metrics.CYCLES}),
	}
}

// PowerModule builds the POWER_MON module for battery-powered hosts. It is
// deliberately not part of StandardModules: the paper uses battery
// monitoring as its example of functionality "available in the remote
// kernel but not directly supported in dproc" that applications deploy
// dynamically at run time via Register.
func PowerModule(src Source) *Module {
	return sourceModule("POWER_MON", metrics.Power, src,
		[]metrics.ID{metrics.BATTERY, metrics.POWERDRAW})
}

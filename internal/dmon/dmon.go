package dmon

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"dproc/internal/clock"
	"dproc/internal/ecode"
	"dproc/internal/kecho"
	"dproc/internal/metrics"
	"dproc/internal/obs"
	"dproc/internal/wire"
)

// Channel names used by every dproc node, per the paper's architecture: one
// data (monitoring) channel and one control channel.
const (
	MonitoringChannel = "dproc.monitoring"
	ControlChannel    = "dproc.control"
)

// DMon is the distributed monitor for one node.
type DMon struct {
	node string
	clk  clock.Clock

	mu       sync.Mutex
	modules  []*Module
	config   [metrics.NumResources]ResourceConfig
	filters  [metrics.NumResources]*ecode.Filter // per-resource filters
	global   *ecode.Filter                       // filter over all resources
	lastSent [metrics.NumIDs]float64
	lastSeen [metrics.NumIDs]float64
	nextDue  [metrics.NumResources]time.Time
	padding  int
	seq      uint64

	vms   *ecode.VMPool
	env   *ecode.Env
	store *Store

	monCh *kecho.Channel
	ctlCh *kecho.Channel

	// obs, when set, receives filter-execution timings and makes the
	// per-report trace sampling decision at the top of PollOnce — the moment
	// the event is born. Nil is fine: every call site is nil-safe.
	obs *obs.Observer

	// FilterErrors counts filter executions that failed at run time; the
	// affected poll falls back to unfiltered submission.
	filterErrors uint64
}

// New creates a d-mon for the named node, registering the standard modules
// backed by src. src may be nil if all modules are registered manually.
func New(node string, clk clock.Clock, src Source) *DMon {
	return NewWith(node, clk, src, StoreOptions{})
}

// NewWith is New with explicit history options (depth/retention) for the
// store backing /proc/cluster. The store is memory-only; use OpenWith for
// a durable one.
func NewWith(node string, clk clock.Clock, src Source, opts StoreOptions) *DMon {
	opts.DataDir = ""
	d, err := OpenWith(node, clk, src, opts)
	if err != nil {
		panic("dmon: memory-only store cannot fail: " + err.Error()) // unreachable
	}
	return d
}

// OpenWith is NewWith honoring StoreOptions.DataDir: with one set, the
// node's history store is durable and existing history is recovered before
// the d-mon comes up. Pair with Close so a clean shutdown never needs
// replay.
func OpenWith(node string, clk clock.Clock, src Source, opts StoreOptions) (*DMon, error) {
	store, err := OpenStore(opts)
	if err != nil {
		return nil, err
	}
	d := &DMon{
		node:  node,
		clk:   clk,
		vms:   ecode.NewVMPool(),
		store: store,
	}
	for r := range d.config {
		d.config[r] = ResourceConfig{Period: DefaultPeriod}
	}
	if src != nil {
		for _, m := range StandardModules(src) {
			d.Register(m)
		}
	}
	d.env = ecode.NewEnv(FilterSpec(), int(metrics.NumIDs))
	d.env.Input = make([]ecode.Record, metrics.NumIDs)
	return d, nil
}

// Close seals and flushes the history store (see Store.Close). The d-mon's
// channels are managed by the caller and unaffected.
func (d *DMon) Close() error { return d.store.Close() }

// FilterSpec returns the E-code environment spec filters are compiled
// against: every metric's upper-case symbol bound to its ID.
func FilterSpec() *ecode.EnvSpec {
	consts := map[string]int64{}
	for name, idx := range metrics.FilterSymbols() {
		consts[name] = int64(idx)
	}
	return &ecode.EnvSpec{Consts: consts}
}

// SetObserver attaches the node's observability collector. Call before
// polling starts; a nil observer (the default) keeps instrumentation to a
// single branch per stage.
func (d *DMon) SetObserver(o *obs.Observer) {
	d.mu.Lock()
	d.obs = o
	d.mu.Unlock()
}

// Node returns the node name.
func (d *DMon) Node() string { return d.node }

// Store returns the remote-data store backing /proc/cluster.
func (d *DMon) Store() *Store { return d.store }

// FilterErrors reports how many filter executions failed at run time.
func (d *DMon) FilterErrors() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.filterErrors
}

// Register adds a monitoring module (the paper's register service call).
// Modules can be added at any time, including while polling is active.
func (d *DMon) Register(m *Module) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.modules = append(d.modules, m)
}

// Modules returns the registered module names, in registration order.
func (d *DMon) Modules() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.modules))
	for i, m := range d.modules {
		out[i] = m.Name
	}
	return out
}

// SetPadding sets extra bytes appended to every report, used by the
// evaluation to emulate larger monitoring events (Figure 7's 5 KB events).
func (d *DMon) SetPadding(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	d.padding = n
}

// SetPeriod sets the update period for one resource class.
func (d *DMon) SetPeriod(r metrics.Resource, period time.Duration) error {
	if period <= 0 {
		return errors.New("dmon: period must be positive")
	}
	if r < 0 || r >= metrics.NumResources {
		return fmt.Errorf("dmon: invalid resource %d", int(r))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.config[r].Period = period
	d.nextDue[r] = time.Time{} // re-arm immediately
	return nil
}

// Period returns the configured update period for a resource.
func (d *DMon) Period(r metrics.Resource) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.config[r].Period
}

// AddThreshold appends a send-gating threshold to the metric's resource.
// Thresholds with Metric == AnyMetric must be installed via
// AddResourceThreshold, since the target resource is ambiguous otherwise.
func (d *DMon) AddThreshold(t Threshold) error {
	if !t.Metric.Valid() {
		return fmt.Errorf("dmon: invalid metric %d", int(t.Metric))
	}
	r := t.Metric.Resource()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.config[r].Thresholds = append(d.config[r].Thresholds, t)
	return nil
}

// AddResourceThreshold appends a threshold gating every metric of resource
// r (the threshold's Metric is forced to AnyMetric).
func (d *DMon) AddResourceThreshold(r metrics.Resource, t Threshold) error {
	if r < 0 || r >= metrics.NumResources {
		return fmt.Errorf("dmon: invalid resource %d", int(r))
	}
	t.Metric = AnyMetric
	d.mu.Lock()
	defer d.mu.Unlock()
	d.config[r].Thresholds = append(d.config[r].Thresholds, t)
	return nil
}

// SetDifferential installs the paper's differential filter: each metric of
// each resource is sent only when it varies by at least pct percent from
// the last sent value. Applied to all resources.
func (d *DMon) SetDifferential(pct float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for r := range d.config {
		d.config[r].Thresholds = []Threshold{{Metric: AnyMetric, Kind: DiffPercent, A: pct}}
	}
}

// ClearThresholds removes all thresholds for one resource.
func (d *DMon) ClearThresholds(r metrics.Resource) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.config[r].Thresholds = nil
}

// ClearAllThresholds removes thresholds for every resource.
func (d *DMon) ClearAllThresholds() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for r := range d.config {
		d.config[r].Thresholds = nil
	}
}

// DeployFilter compiles E-code source and installs it as the filter for one
// resource, or for all resources when all is true. Passing empty source
// removes the filter. Compilation errors leave the previous filter intact.
func (d *DMon) DeployFilter(r metrics.Resource, all bool, source string) error {
	var f *ecode.Filter
	if source != "" {
		var err error
		// Cached: redeploying an unchanged control string (e.g. after a
		// restart, or the same filter pushed to every resource) skips the
		// whole front-end and reuses the compiled program.
		f, err = ecode.CompileCached(source, FilterSpec())
		if err != nil {
			return fmt.Errorf("dmon: compiling filter: %w", err)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if all {
		d.global = f
		return nil
	}
	if r < 0 || r >= metrics.NumResources {
		return fmt.Errorf("dmon: invalid resource %d", int(r))
	}
	d.filters[r] = f
	return nil
}

// HasFilter reports whether a filter is installed (global or any resource).
func (d *DMon) HasFilter() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.global != nil {
		return true
	}
	for _, f := range d.filters {
		if f != nil {
			return true
		}
	}
	return false
}

// ConfigText renders the current monitoring configuration as control-file
// text — the introspective read of the control interface, so
// `cat cluster/<node>/config` round-trips with what was written. Filters
// render as comments (their source may span many commands).
func (d *DMon) ConfigText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var sb strings.Builder
	for r := metrics.Resource(0); r < metrics.NumResources; r++ {
		cfg := d.config[r]
		if cfg.Period != DefaultPeriod {
			fmt.Fprintf(&sb, "period %s %g\n", r, cfg.Period.Seconds())
		}
		for _, th := range cfg.Thresholds {
			switch th.Kind {
			case DiffPercent:
				fmt.Fprintf(&sb, "diff %s %g\n", r, th.A)
			case Above:
				fmt.Fprintf(&sb, "threshold %s above %g\n", th.Metric, th.A)
			case Below:
				fmt.Fprintf(&sb, "threshold %s below %g\n", th.Metric, th.A)
			case InRange:
				fmt.Fprintf(&sb, "threshold %s inrange %g %g\n", th.Metric, th.A, th.B)
			case OutOfRange:
				fmt.Fprintf(&sb, "threshold %s outrange %g %g\n", th.Metric, th.A, th.B)
			}
		}
		if d.filters[r] != nil {
			fmt.Fprintf(&sb, "# filter %s: %d bytes of E-code deployed\n",
				r, len(d.filters[r].Source()))
		}
	}
	if d.global != nil {
		fmt.Fprintf(&sb, "# filter all: %d bytes of E-code deployed\n", len(d.global.Source()))
	}
	return sb.String()
}

// Apply executes one parsed control command against this d-mon.
func (d *DMon) Apply(cmd Command) error {
	switch cmd.Kind {
	case "period":
		if cmd.AllResources {
			for r := metrics.Resource(0); r < metrics.NumResources; r++ {
				if err := d.SetPeriod(r, cmd.Period); err != nil {
					return err
				}
			}
			return nil
		}
		return d.SetPeriod(cmd.Resource, cmd.Period)
	case "diff":
		if cmd.AllResources {
			d.SetDifferential(cmd.Threshold.A)
			return nil
		}
		d.mu.Lock()
		d.config[cmd.Resource].Thresholds = []Threshold{cmd.Threshold}
		d.mu.Unlock()
		return nil
	case "threshold":
		return d.AddThreshold(cmd.Threshold)
	case "clear":
		if cmd.AllResources {
			d.ClearAllThresholds()
			return nil
		}
		d.ClearThresholds(cmd.Resource)
		return nil
	case "filter":
		return d.DeployFilter(cmd.Resource, cmd.AllResources, cmd.Source)
	}
	return fmt.Errorf("dmon: unknown command kind %q", cmd.Kind)
}

// ApplyControlText parses and applies control-file text.
func (d *DMon) ApplyControlText(text string) error {
	cmds, err := ParseControl(text)
	if err != nil {
		return err
	}
	for _, cmd := range cmds {
		if err := d.Apply(cmd); err != nil {
			return err
		}
	}
	return nil
}

// CollectDue runs every module whose resource period has elapsed and
// returns the collected samples annotated with last-sent values. It also
// refreshes the lastSeen cache for all collected metrics.
func (d *DMon) CollectDue(now time.Time) []metrics.Sample {
	d.mu.Lock()
	due := make([]bool, metrics.NumResources)
	anyDue := false
	for r := range d.config {
		if !now.Before(d.nextDue[r]) {
			due[r] = true
			anyDue = true
			d.nextDue[r] = now.Add(d.config[r].Period)
		}
	}
	mods := make([]*Module, len(d.modules))
	copy(mods, d.modules)
	d.mu.Unlock()
	if !anyDue {
		return nil
	}
	var samples []metrics.Sample
	for _, m := range mods {
		if m.Resource >= 0 && m.Resource < metrics.NumResources && !due[m.Resource] {
			continue
		}
		samples = append(samples, m.Collect(now)...)
	}
	d.mu.Lock()
	for i := range samples {
		id := samples[i].ID
		if id.Valid() {
			samples[i].LastSent = d.lastSent[id]
			d.lastSeen[id] = samples[i].Value
		}
	}
	d.mu.Unlock()
	return samples
}

// FilterSamples applies thresholds and any deployed filters to the
// collected samples, returning the samples to send. It updates last-sent
// bookkeeping for survivors.
func (d *DMon) FilterSamples(now time.Time, samples []metrics.Sample) []metrics.Sample {
	return d.filterSamples(now, samples, 0)
}

// filterSamples is FilterSamples carrying the report's trace ID (0 when
// unsampled) so filter-execution spans attribute to the right trace.
func (d *DMon) filterSamples(now time.Time, samples []metrics.Sample, tid uint64) []metrics.Sample {
	if len(samples) == 0 {
		return nil
	}
	d.mu.Lock()
	// Threshold pass.
	candidates := samples[:0:0]
	for _, s := range samples {
		if !s.ID.Valid() {
			continue
		}
		pass := true
		for _, th := range d.config[s.ID.Resource()].Thresholds {
			if !th.AppliesTo(s.ID) {
				continue
			}
			if !th.Pass(s.Value, s.LastSent) {
				pass = false
				break
			}
		}
		if pass {
			candidates = append(candidates, s)
		}
	}
	global := d.global
	perRes := d.filters
	d.mu.Unlock()

	hasPerRes := false
	for _, f := range perRes {
		if f != nil {
			hasPerRes = true
			break
		}
	}
	out := candidates
	if global != nil || hasPerRes {
		out = d.runFilters(now, candidates, global, perRes, tid)
	}
	// Record what was sent.
	d.mu.Lock()
	for _, s := range out {
		if s.ID.Valid() {
			d.lastSent[s.ID] = s.Value
		}
	}
	d.mu.Unlock()
	return out
}

// runFilters executes the deployed E-code against the candidate set. The
// filter sees the full metric array (input[LOADAVG] etc., with current
// values for everything observed so far) and its output determines what is
// sent. Samples belonging to resources without any filter pass through
// untouched.
func (d *DMon) runFilters(now time.Time, candidates []metrics.Sample, global *ecode.Filter, perRes [metrics.NumResources]*ecode.Filter, tid uint64) []metrics.Sample {
	d.mu.Lock()
	o := d.obs
	env := d.env
	env.Reset()
	for id := metrics.ID(0); id < metrics.NumIDs; id++ {
		env.Input[id] = ecode.Record{
			Value:     d.lastSeen[id],
			LastSent:  d.lastSent[id],
			ID:        int64(id),
			Timestamp: float64(now.UnixNano()) / 1e9,
		}
	}
	// Candidates carry this poll's fresh values.
	for _, s := range candidates {
		env.Input[s.ID] = ecode.Record{
			Value:     s.Value,
			LastSent:  s.LastSent,
			ID:        int64(s.ID),
			Timestamp: float64(s.Time.UnixNano()) / 1e9,
		}
	}
	d.mu.Unlock()
	vm := d.vms.Get()
	defer d.vms.Put(vm)

	inCandidates := func(id metrics.ID) (metrics.Sample, bool) {
		for _, s := range candidates {
			if s.ID == id {
				return s, true
			}
		}
		return metrics.Sample{}, false
	}

	runOne := func(f *ecode.Filter, scope func(metrics.ID) bool) ([]metrics.Sample, bool) {
		env.Reset()
		var err error
		if o != nil {
			var dur time.Duration
			_, dur, err = f.RunTimed(vm, env)
			o.ObserveFilter(dur, tid)
		} else {
			_, err = f.Run(vm, env)
		}
		if err != nil {
			d.mu.Lock()
			d.filterErrors++
			d.mu.Unlock()
			return nil, false
		}
		var out []metrics.Sample
		for i := 0; i < env.OutCount(); i++ {
			rec := env.Output[i]
			id := metrics.ID(rec.ID)
			if !id.Valid() || !scope(id) {
				continue
			}
			s := metrics.Sample{ID: id, Value: rec.Value, LastSent: rec.LastSent, Time: now}
			if orig, ok := inCandidates(id); ok {
				s.Time = orig.Time
			}
			out = append(out, s)
		}
		return out, true
	}

	if global != nil {
		out, ok := runOne(global, func(metrics.ID) bool { return true })
		if !ok {
			return candidates // fall back to unfiltered on filter failure
		}
		return out
	}
	// Per-resource filters: filtered resources are replaced by their filter
	// output; unfiltered resources pass through.
	var out []metrics.Sample
	for _, s := range candidates {
		if perRes[s.ID.Resource()] == nil {
			out = append(out, s)
		}
	}
	for r := metrics.Resource(0); r < metrics.NumResources; r++ {
		f := perRes[r]
		if f == nil {
			continue
		}
		res := r
		filtered, ok := runOne(f, func(id metrics.ID) bool { return id.Resource() == res })
		if !ok {
			// Fall back to this resource's unfiltered candidates.
			for _, s := range candidates {
				if s.ID.Resource() == res {
					out = append(out, s)
				}
			}
			continue
		}
		out = append(out, filtered...)
	}
	return out
}

// BuildReport wraps samples in a report ready for submission.
func (d *DMon) BuildReport(now time.Time, samples []metrics.Sample) *metrics.Report {
	d.mu.Lock()
	d.seq++
	seq := d.seq
	pad := d.padding
	d.mu.Unlock()
	r := &metrics.Report{Node: d.node, Seq: seq, Time: now, Samples: samples}
	if pad > 0 {
		r.Padding = make([]byte, pad)
	}
	return r
}

// PollOnce performs one complete d-mon polling iteration: collect due
// samples, apply parameters and filters, and submit the surviving report to
// the monitoring channel. It returns the report (nil if nothing was due or
// everything was filtered) and the number of peers it was sent to.
func (d *DMon) PollOnce() (*metrics.Report, int, error) {
	now := d.clk.Now()
	samples := d.CollectDue(now)
	if len(samples) == 0 {
		return nil, 0, nil
	}
	// The trace decision is made here, when the report is born, so the
	// filter-execution span downstream of this point shares the report's ID
	// with the queue/propagation/dispatch spans recorded on other nodes.
	d.mu.Lock()
	o := d.obs
	d.mu.Unlock()
	tid := o.SampleTrace()
	send := d.filterSamples(now, samples, tid)
	if len(send) == 0 {
		return nil, 0, nil
	}
	report := d.BuildReport(now, send)
	// The node's own report lands in its own store before submission: the
	// channels deliver only to peers, and cluster-wide history queries need
	// every node to answer for its own series — self history cannot live
	// exclusively in other nodes' stores.
	d.store.Update(report)
	d.mu.Lock()
	mon := d.monCh
	d.mu.Unlock()
	if mon == nil {
		return report, 0, nil
	}
	n, err := mon.SubmitTraced(report.Encode(), tid)
	return report, n, err
}

// --- channel wiring ---

// Attach connects d-mon to its monitoring and control channels: incoming
// monitoring events update the store, incoming control events are parsed
// and applied when addressed to this node (or broadcast).
func (d *DMon) Attach(mon, ctl *kecho.Channel) {
	d.mu.Lock()
	d.monCh = mon
	d.ctlCh = ctl
	d.mu.Unlock()
	if mon != nil {
		mon.Subscribe(func(ev kecho.Event) {
			report, err := metrics.DecodeReport(ev.Payload)
			if err != nil {
				return
			}
			d.store.Update(report)
		})
	}
	if ctl != nil {
		ctl.Subscribe(func(ev kecho.Event) {
			target, text, err := DecodeControl(ev.Payload)
			if err != nil {
				return
			}
			if target != "" && target != d.node {
				return
			}
			_ = d.ApplyControlText(text)
		})
	}
}

// PollChannels drains both channels' inboxes, dispatching handlers. Returns
// the number of events handled. This is the receive half of d-mon's
// per-second poll loop.
func (d *DMon) PollChannels() int {
	d.mu.Lock()
	mon, ctl := d.monCh, d.ctlCh
	d.mu.Unlock()
	n := 0
	if mon != nil {
		n += mon.Poll()
	}
	if ctl != nil {
		n += ctl.Poll()
	}
	return n
}

// SendControl publishes a control command to a remote node via the control
// channel. target == "" broadcasts to all nodes.
func (d *DMon) SendControl(target, text string) error {
	d.mu.Lock()
	ctl := d.ctlCh
	d.mu.Unlock()
	if ctl == nil {
		return errors.New("dmon: no control channel attached")
	}
	payload := EncodeControl(target, text)
	if target == "" {
		_, err := ctl.Submit(payload)
		return err
	}
	return ctl.SubmitTo(target, payload)
}

// EncodeControl builds the control-channel wire payload.
func EncodeControl(target, text string) []byte {
	e := wire.NewEncoder(16 + len(target) + len(text))
	e.String(target)
	e.String(text)
	return e.Bytes()
}

// DecodeControl parses a control-channel payload.
func DecodeControl(payload []byte) (target, text string, err error) {
	dec := wire.NewDecoder(payload)
	target = dec.String()
	text = dec.String()
	if err := dec.Finish(); err != nil {
		return "", "", err
	}
	return target, text, nil
}

package dmon

import (
	"strings"
	"testing"
	"time"

	"dproc/internal/metrics"
)

func TestNodeName(t *testing.T) {
	n := newSimNode(t, "etna")
	if n.d.Node() != "etna" {
		t.Fatalf("Node = %q", n.d.Node())
	}
}

func TestAddResourceThreshold(t *testing.T) {
	n := newSimNode(t, "alan")
	if err := n.d.AddResourceThreshold(metrics.Disk, Threshold{Kind: DiffPercent, A: 25}); err != nil {
		t.Fatal(err)
	}
	if err := n.d.AddResourceThreshold(metrics.Resource(99), Threshold{}); err == nil {
		t.Fatal("bad resource accepted")
	}
	// The threshold gates every disk metric: unchanged values suppressed
	// after the first send.
	now := n.clk.Now()
	n.d.FilterSamples(now, n.d.CollectDue(now))
	n.clk.Advance(time.Second)
	now = n.clk.Now()
	sent := n.d.FilterSamples(now, n.d.CollectDue(now))
	for _, s := range sent {
		if s.ID.Resource() == metrics.Disk {
			t.Fatalf("unchanged disk metric %v passed a 25%% differential", s.ID)
		}
	}
}

func TestClearThresholds(t *testing.T) {
	n := newSimNode(t, "alan")
	n.d.SetDifferential(15)
	n.d.ClearThresholds(metrics.CPU)
	// CPU flows again; memory still gated.
	now := n.clk.Now()
	n.d.FilterSamples(now, n.d.CollectDue(now)) // prime lastSent
	n.clk.Advance(time.Second)
	now = n.clk.Now()
	sent := n.d.FilterSamples(now, n.d.CollectDue(now))
	var cpu, mem int
	for _, s := range sent {
		switch s.ID.Resource() {
		case metrics.CPU:
			cpu++
		case metrics.Memory:
			mem++
		}
	}
	if cpu == 0 {
		t.Fatal("cleared CPU thresholds still gate")
	}
	if mem != 0 {
		t.Fatal("memory thresholds vanished too")
	}
	n.d.ClearAllThresholds()
	n.clk.Advance(time.Second)
	now = n.clk.Now()
	if got := len(n.d.FilterSamples(now, n.d.CollectDue(now))); got != standardMetricCount {
		t.Fatalf("after ClearAllThresholds sent %d, want %d", got, standardMetricCount)
	}
}

func TestConfigTextRendersEverything(t *testing.T) {
	n := newSimNode(t, "alan")
	if n.d.ConfigText() != "" {
		t.Fatalf("fresh config = %q", n.d.ConfigText())
	}
	err := n.d.ApplyControlText(strings.Join([]string{
		"period cpu 2",
		"diff net 15",
		"threshold loadavg above 3",
		"threshold freemem below 5e7",
		"threshold diskusage inrange 100 200",
		"threshold netbw outrange 0 1e6",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.d.DeployFilter(metrics.PMC, false, "output[0] = input[CACHE_MISS];"); err != nil {
		t.Fatal(err)
	}
	if err := n.d.DeployFilter(0, true, "output[0] = input[LOADAVG];"); err != nil {
		t.Fatal(err)
	}
	text := n.d.ConfigText()
	for _, want := range []string{
		"period cpu 2",
		"diff net 15",
		"threshold loadavg above 3",
		"threshold freemem below 5e+07",
		"threshold diskusage inrange 100 200",
		"threshold netbw outrange 0 1e+06",
		"# filter pmc:",
		"# filter all:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("config %q missing %q", text, want)
		}
	}
	// The non-comment portion re-parses cleanly.
	if _, err := ParseControl(text); err != nil {
		t.Fatalf("rendered config does not re-parse: %v", err)
	}
}

func TestApplyAllResourcesPeriodAndDiff(t *testing.T) {
	n := newSimNode(t, "alan")
	if err := n.d.ApplyControlText("period all 4"); err != nil {
		t.Fatal(err)
	}
	for r := metrics.Resource(0); r < metrics.NumResources; r++ {
		if n.d.Period(r) != 4*time.Second {
			t.Fatalf("resource %v period = %v", r, n.d.Period(r))
		}
	}
	if err := n.d.ApplyControlText("diff disk 30"); err != nil {
		t.Fatal(err)
	}
	if err := n.d.ApplyControlText("clear disk"); err != nil {
		t.Fatal(err)
	}
	if err := n.d.ApplyControlText("clear all"); err != nil {
		t.Fatal(err)
	}
	if err := n.d.Apply(Command{Kind: "bogus"}); err == nil {
		t.Fatal("unknown command kind accepted")
	}
}

func TestApplyFilterScoped(t *testing.T) {
	n := newSimNode(t, "alan")
	if err := n.d.ApplyControlText("filter cpu\noutput[0] = input[LOADAVG];"); err != nil {
		t.Fatal(err)
	}
	if !n.d.HasFilter() {
		t.Fatal("scoped filter not installed")
	}
	text := n.d.ConfigText()
	if !strings.Contains(text, "# filter cpu:") {
		t.Fatalf("config = %q", text)
	}
}

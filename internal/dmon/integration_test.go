package dmon

import (
	"testing"
	"time"

	"dproc/internal/clock"
	"dproc/internal/kecho"
	"dproc/internal/metrics"
	"dproc/internal/registry"
	"dproc/internal/simres"
)

// liveNode is a d-mon attached to real KECho channels over loopback TCP,
// driven by the real clock.
type liveNode struct {
	host *simres.Host
	d    *DMon
	mon  *kecho.Channel
	ctl  *kecho.Channel
}

func newLiveCluster(t *testing.T, names ...string) []*liveNode {
	t.Helper()
	regSrv, err := registry.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { regSrv.Close() })
	clk := clock.NewReal()
	var nodes []*liveNode
	for i, name := range names {
		host := simres.NewHost(name, clk, int64(i+1))
		host.SetNoise(0)
		d := New(name, clk, host)
		regCli := registry.NewClient(regSrv.Addr())
		t.Cleanup(func() { regCli.Close() })
		mon, err := kecho.Join(regCli, MonitoringChannel, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mon.Close() })
		ctl, err := kecho.Join(regCli, ControlChannel, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ctl.Close() })
		d.Attach(mon, ctl)
		nodes = append(nodes, &liveNode{host: host, d: d, mon: mon, ctl: ctl})
	}
	for _, n := range nodes {
		if !n.mon.WaitForPeers(len(names)-1, 2*time.Second) ||
			!n.ctl.WaitForPeers(len(names)-1, 2*time.Second) {
			t.Fatal("channel mesh did not form")
		}
	}
	return nodes
}

// pump polls all nodes' channels until cond holds or the deadline passes.
func pump(t *testing.T, nodes []*liveNode, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached while pumping channels")
		}
		for _, n := range nodes {
			n.d.PollChannels()
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMonitoringReportsReachRemoteStores(t *testing.T) {
	nodes := newLiveCluster(t, "alan", "maui", "etna")
	nodes[0].host.AddTask(2) // alan has load 2
	report, sent, err := nodes[0].d.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || sent != 2 {
		t.Fatalf("report=%v sent=%d, want delivery to 2 peers", report, sent)
	}
	pump(t, nodes, func() bool {
		v1, ok1 := nodes[1].d.Store().Value("alan", metrics.LOADAVG)
		v2, ok2 := nodes[2].d.Store().Value("alan", metrics.LOADAVG)
		return ok1 && ok2 && v1 == 2 && v2 == 2
	})
	// alan's own store holds its own data too — recorded locally at publish
	// time (the channels deliver only to peers), so cluster-wide history
	// queries can ask each node for its own series.
	if v, ok := nodes[0].d.Store().Value("alan", metrics.LOADAVG); !ok || v != 2 {
		t.Fatalf("publisher's own history = (%g, %v), want its published sample", v, ok)
	}
}

func TestRemoteFilterDeploymentViaControlChannel(t *testing.T) {
	nodes := newLiveCluster(t, "alan", "maui")
	// maui deploys a filter on alan: only loadavg above 2 is reported.
	err := nodes[1].d.SendControl("alan",
		"filter all\nif (input[LOADAVG].value > 2) { output[0] = input[LOADAVG]; }")
	if err != nil {
		t.Fatal(err)
	}
	pump(t, nodes, func() bool { return nodes[0].d.HasFilter() })

	// Idle alan: poll produces nothing (loadavg 0 blocked by filter).
	report, _, err := nodes[0].d.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if report != nil {
		t.Fatalf("filtered node still published: %+v", report.Samples)
	}
	// Load alan beyond the threshold; next poll publishes exactly loadavg.
	nodes[0].host.AddTask(3)
	time.Sleep(1100 * time.Millisecond) // let the 1s period elapse (real clock)
	report, _, err = nodes[0].d.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || len(report.Samples) != 1 || report.Samples[0].ID != metrics.LOADAVG {
		t.Fatalf("report = %+v, want single loadavg sample", report)
	}
	pump(t, nodes, func() bool {
		v, ok := nodes[1].d.Store().Value("alan", metrics.LOADAVG)
		return ok && v == 3
	})
}

func TestBroadcastControlReachesAllNodes(t *testing.T) {
	nodes := newLiveCluster(t, "alan", "maui", "etna")
	if err := nodes[0].d.SendControl("", "period cpu 7"); err != nil {
		t.Fatal(err)
	}
	pump(t, nodes, func() bool {
		return nodes[1].d.Period(metrics.CPU) == 7*time.Second &&
			nodes[2].d.Period(metrics.CPU) == 7*time.Second
	})
	// Sender's own period is unchanged (no self-delivery on KECho).
	if nodes[0].d.Period(metrics.CPU) != time.Second {
		t.Fatal("broadcast control looped back to sender")
	}
}

func TestTargetedControlDoesNotLeak(t *testing.T) {
	nodes := newLiveCluster(t, "alan", "maui", "etna")
	if err := nodes[0].d.SendControl("maui", "period disk 9"); err != nil {
		t.Fatal(err)
	}
	pump(t, nodes, func() bool {
		return nodes[1].d.Period(metrics.Disk) == 9*time.Second
	})
	if nodes[2].d.Period(metrics.Disk) != time.Second {
		t.Fatal("targeted control affected a third node")
	}
}

func TestSendControlWithoutChannel(t *testing.T) {
	d := New("solo", clock.NewReal(), nil)
	if err := d.SendControl("", "period cpu 1"); err == nil {
		t.Fatal("SendControl without attached channel succeeded")
	}
}

func TestMalformedEventsIgnored(t *testing.T) {
	nodes := newLiveCluster(t, "alan", "maui")
	// Raw garbage on both channels must not disturb the receiver.
	if _, err := nodes[0].mon.Submit([]byte("not a report")); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].ctl.Submit([]byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		nodes[1].d.PollChannels()
		time.Sleep(2 * time.Millisecond)
	}
	if len(nodes[1].d.Store().Nodes()) != 0 {
		t.Fatal("garbage produced store entries")
	}
}

// The sockets engine: a real in-process cluster (core.SimCluster) over
// loopback TCP, with every node's channel transport wrapped in a faultnet
// Fabric so the schedule's kill/stall/partition verbs sever, stall and
// split the actual connections — and the reconnect supervisor, queue-drop
// accounting and WAL recovery paths earn their counters the hard way. Where
// the model engine computes, this engine measures; it is bounded to modest
// node counts by file descriptors and goroutines (see maxSocketNodes).
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dproc/internal/adminproto"
	"dproc/internal/clock"
	"dproc/internal/core"
	"dproc/internal/dmon"
	"dproc/internal/faultnet"
	"dproc/internal/kecho"
	"dproc/internal/metrics"
	"dproc/internal/obs"
	"dproc/internal/overlay"
	"dproc/internal/workload"

	mrand "math/rand"
)

// drainSettle is how long DrainAll waits for the wire to go quiet at the
// end of a sockets run before harvesting counters.
const drainSettle = 100 * time.Millisecond

// runSockets executes one sweep point on the real transport. branching > 0
// replaces the monitoring channel's flat mesh with a relay tree of that
// branching factor (every node relay-capable, so the tree is derived from ID
// order alone).
func runSockets(s *Scenario, n int, branching int) (PointResult, error) {
	var clk clock.Clock
	var vclk *clock.Virtual
	if s.Clock == ClockVirtual {
		vclk = clock.NewVirtual(clock.Epoch)
		clk = vclk
	} else {
		clk = clock.NewReal()
	}

	fabric := faultnet.NewFabric(s.Seed)

	dataDir := s.DataDir
	if dataDir == "auto" {
		tmp, err := os.MkdirTemp("", "dprocsim-")
		if err != nil {
			return PointResult{}, fmt.Errorf("scenario: temp data dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	disks := make(map[string]*faultnet.Disk)

	cluster, err := core.NewSimClusterWith(n, clk, s.Seed, 0, func(i int, cfg *core.Config) {
		cfg.Channel.Transport = fabric.Host(cfg.Name)
		cfg.Channel.InboxSize = s.Subscribers.Inbox
		cfg.Channel.Writers = s.Writers
		if s.Dispatch == "event" {
			cfg.Channel.Dispatch = kecho.EventDriven
		}
		if branching > 0 {
			cfg.RelayBranching = branching
			cfg.RelayRole = overlay.RoleRelay
		}
		cfg.TraceSample = s.TraceSample
		if dataDir != "" {
			d := faultnet.NewDisk(nil)
			disks[cfg.Name] = d
			cfg.StoreFS = d
			cfg.DataDir = filepath.Join(dataDir, cfg.Name)
		}
	})
	if err != nil {
		return PointResult{}, fmt.Errorf("scenario: building cluster: %w", err)
	}
	defer cluster.Close()

	// Schedules with queryall run real scatter-gather fan-outs, so every node
	// gets an admin server whose transport shares the node's fault identity —
	// a crashed, stalled or partitioned node fails its part of the query the
	// same way it drops its channel traffic.
	hasQueryAll := false
	for _, a := range s.Schedule {
		if a.Verb == "queryall" {
			hasQueryAll = true
		}
	}
	var admins []*adminproto.Server
	if hasQueryAll {
		for _, node := range cluster.Nodes {
			srv, err := adminproto.NewServerWith(node, "127.0.0.1:0", adminproto.ServerOptions{
				Timeout:      2 * time.Second,
				QueryTimeout: time.Second,
				Transport:    fabric.Host(node.Name()),
			})
			if err != nil {
				return PointResult{}, fmt.Errorf("scenario: admin server for %s: %w", node.Name(), err)
			}
			admins = append(admins, srv)
		}
		defer func() {
			for _, srv := range admins {
				_ = srv.Close()
			}
		}()
	}

	start := clk.Now()
	gens := make([]*workload.EventGen, n)
	for i, node := range cluster.Nodes {
		if err := applyFilters(node.DMon(), s); err != nil {
			return PointResult{}, err
		}
		gens[i] = workload.NewEventGen(workload.EventProfile{
			Rate:          s.Load.Rate,
			Payload:       s.Load.Payload,
			PayloadJitter: s.Load.PayloadJitter,
			BurstEvery:    s.Load.BurstEvery,
			BurstLen:      s.Load.BurstLen,
			BurstFactor:   s.Load.BurstFactor,
		}, s.Seed+int64(i)*104_729, start)
	}

	pt := PointResult{Nodes: n, Duration: s.Duration}
	churnRng := mrand.New(mrand.NewSource(s.Seed*1_000_003 + int64(n)))
	downUntil := make([]time.Time, n)
	var kills, revives, churnLeaves, churnRejoins, partitions, heals, diskFaults uint64
	var qaRuns, qaPartials, qaNodesOK, qaNodesFailed, qaErrors uint64
	crashed := make(map[string]bool)

	schedule := sortSchedule(s.Schedule)
	fired := 0

	steps := int(s.Duration / s.Tick)
	pt.Steps = steps
	churnEvery := 0
	if s.Churn.Fraction > 0 && s.Churn.Interval > 0 {
		churnEvery = int(s.Churn.Interval / s.Tick)
		if churnEvery < 1 {
			churnEvery = 1
		}
	}

	for step := 1; step <= steps; step++ {
		if vclk != nil {
			vclk.Advance(s.Tick)
		} else {
			time.Sleep(s.Tick)
		}
		now := clk.Now()
		elapsed := time.Duration(step) * s.Tick

		for fired < len(schedule) && schedule[fired].At <= elapsed {
			a := schedule[fired]
			fired++
			switch a.Verb {
			case "kill":
				fabric.Crash(a.Node)
				kills++
			case "revive":
				fabric.Allow(a.Node)
				revives++
			case "stall":
				fabric.StallWrites(a.Node, true)
			case "unstall":
				fabric.StallWrites(a.Node, false)
			case "partition":
				k := int(a.Value)
				for i := 0; i < n; i++ {
					group := "b"
					if i < k {
						group = "a"
					}
					fabric.SetGroup(NodeName(i), group)
				}
				fabric.Partition("a", "b")
				partitions++
			case "heal":
				fabric.Heal()
				heals++
			case "disk":
				d := disks[a.Node]
				switch a.Arg {
				case "enospc":
					d.LimitSpace(int(a.Value))
				case "failsync":
					d.FailSyncs(true)
				}
				diskFaults++
			case "queryall":
				// Coordinate from the first node that is still up; the dead
				// ones show up as failed entries in the merged result.
				coord := admins[0]
				for i := 0; i < n; i++ {
					if !crashed[NodeName(i)] && downUntil[i].IsZero() {
						coord = admins[i]
						break
					}
				}
				res, err := coord.QueryAllResult(a.Arg)
				qaRuns++
				if err != nil {
					qaErrors++
					break
				}
				qaNodesOK += uint64(res.OK)
				qaNodesFailed += uint64(res.Failed)
				if res.Partial {
					qaPartials++
				}
			}
		}

		if churnEvery > 0 && step%churnEvery == 0 {
			for i := 0; i < n; i++ {
				r := churnRng.Float64()
				if r < s.Churn.Fraction && downUntil[i].IsZero() {
					fabric.Crash(NodeName(i))
					downUntil[i] = now.Add(s.Churn.Down)
					churnLeaves++
				}
			}
		}
		for i := 0; i < n; i++ {
			if !downUntil[i].IsZero() && !now.Before(downUntil[i]) {
				fabric.Allow(NodeName(i))
				downUntil[i] = time.Time{}
				churnRejoins++
			}
		}

		_, published, _ := cluster.PollAll()
		pt.Reports += uint64(published)

		for i, node := range cluster.Nodes {
			mon := node.MonitoringChannel()
			if mon == nil {
				continue
			}
			for _, size := range gens[i].Tick(now, s.Tick) {
				pt.Events++
				if size < 1 {
					size = 1
				}
				_, _ = mon.Submit(make([]byte, size))
			}
		}
		// Yield to the writer goroutines so the wire keeps pace with the
		// virtual clock.
		if vclk != nil {
			time.Sleep(time.Millisecond)
		}
	}

	cluster.DrainAll(drainSettle)

	// Harvest: channel counters summed across nodes, propagation histograms
	// merged across observers, recovery counters from the transport and the
	// fault injectors.
	var prop obs.Snapshot
	var reconnects, redials, deadlineDrops, queueDrops, walErrors uint64
	var relayed, relayDups uint64
	for _, node := range cluster.Nodes {
		reg := node.Metrics()
		for _, ch := range []string{dmon.MonitoringChannel, dmon.ControlChannel} {
			pt.Deliveries += counter(reg, ch, "events_recv")
			pt.BytesSent += counter(reg, ch, "bytes_sent")
			pt.Drops += counter(reg, ch, "dropped")
			pt.Skips += counter(reg, ch, "join_skips")
			reconnects += counter(reg, ch, "reconnects")
			redials += counter(reg, ch, "redials")
			deadlineDrops += counter(reg, ch, "deadline_drops")
			queueDrops += counter(reg, ch, "queue_drops")
			relayed += counter(reg, ch, "relayed")
			relayDups += counter(reg, ch, "relay_dups")
		}
		if v, ok := reg.Value("tsdb", "", "wal_errors"); ok {
			walErrors += v
		}
		prop.Merge(node.Observer().PropDelay.Snapshot())
	}
	// Real deliveries are dispatched as they arrive.
	pt.Processed = pt.Deliveries
	pt.Prop = prop

	fstats := fabric.Stats()
	pt.Recovery = []RecoveryCounter{
		{"kills", kills},
		{"revives", revives},
		{"churn_leaves", churnLeaves},
		{"churn_rejoins", churnRejoins},
		{"partitions", partitions},
		{"heals", heals},
		{"disk_faults", diskFaults},
		{"queryall_runs", qaRuns},
		{"queryall_partials", qaPartials},
		{"queryall_nodes_ok", qaNodesOK},
		{"queryall_nodes_failed", qaNodesFailed},
		{"queryall_errors", qaErrors},
		{"reconnects", reconnects},
		{"redials", redials},
		{"deadline_drops", deadlineDrops},
		{"queue_drops", queueDrops},
		{"relayed", relayed},
		{"relay_dups", relayDups},
		{"conns_killed", fstats.ConnsKilled},
		{"dials_refused", fstats.DialsRefused},
		{"wal_errors", walErrors},
	}
	return pt, nil
}

// counter reads one channel counter, treating "not registered" as zero.
func counter(reg *metrics.Registry, label, name string) uint64 {
	v, _ := reg.Value("channel", label, name)
	return v
}

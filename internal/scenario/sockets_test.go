package scenario

import (
	"testing"
	"time"
)

// TestSocketsEngineSmall stands up a real 3-node loopback cluster under the
// faultnet fabric for a short virtual-time run with a kill/revive pair, and
// checks the harvest: real deliveries, real propagation samples, and the
// transport's recovery counters reacting to the fault.
func TestSocketsEngineSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets cluster")
	}
	s := Defaults()
	s.Name = "sockets-small"
	s.Path = "sockets-small.toml"
	s.Engine = EngineSockets
	s.Duration = 6 * time.Second
	s.Tick = time.Second
	s.Topology.Nodes = []int{3}
	s.Load.Rate = 2
	s.Schedule = []Action{
		{At: 2 * time.Second, Verb: "kill", Node: "node2", Line: 1},
		{At: 4 * time.Second, Verb: "revive", Node: "node2", Line: 2},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(&s, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Reports == 0 {
		t.Fatal("no monitoring reports published")
	}
	if pt.Events == 0 {
		t.Fatal("no workload events published")
	}
	if pt.Deliveries == 0 {
		t.Fatal("no events delivered over the wire")
	}
	if pt.Prop.Count == 0 {
		t.Fatal("no propagation samples (trace extension not flowing)")
	}
	rc := map[string]uint64{}
	for _, c := range pt.Recovery {
		rc[c.Name] = c.Value
	}
	if rc["kills"] != 1 || rc["revives"] != 1 {
		t.Fatalf("schedule verbs not accounted: %v", rc)
	}
	if rc["conns_killed"] == 0 {
		t.Fatalf("fabric crash severed no connections: %v", rc)
	}
}

// TestSocketsEngineDurable exercises the disk-fault path: durable stores
// behind a faultnet disk injector, with a failsync fault mid-run. The run
// must survive and report the WAL errors it provoked.
func TestSocketsEngineDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets cluster with durable stores")
	}
	s := Defaults()
	s.Name = "sockets-durable"
	s.Path = "sockets-durable.toml"
	s.Engine = EngineSockets
	s.Duration = 4 * time.Second
	s.Tick = time.Second
	s.Topology.Nodes = []int{2}
	s.DataDir = t.TempDir()
	s.Schedule = []Action{
		{At: 2 * time.Second, Verb: "disk", Node: "node0", Arg: "failsync", Line: 1},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(&s, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Reports == 0 || pt.Deliveries == 0 {
		t.Fatalf("durable run went quiet: %+v", pt)
	}
	rc := map[string]uint64{}
	for _, c := range pt.Recovery {
		rc[c.Name] = c.Value
	}
	if rc["disk_faults"] != 1 {
		t.Fatalf("disk fault not applied: %v", rc)
	}
}

// The model engine: single-threaded virtual-time execution that scales to
// thousands of nodes. Each node runs the real d-mon pipeline (modules over a
// simres host, thresholds, deployed E-code) but the network is a fluid
// model: every publisher owns a netsim uplink, fan-out is serialized
// unicast through it (so within one frozen-clock tick a large fan-out burst
// accumulates backlog and later targets see growing delay — the paper's
// Figure 6 shape emerges from the link model, it is not scripted), and
// subscribers are drain-rate/inbox-capacity fluid queues whose overflow is
// counted as drops. Everything downstream of the scenario seed is
// deterministic: one goroutine, slice iteration only, seeded rand streams.
package scenario

import (
	"math/rand"
	"time"

	"dproc/internal/clock"
	"dproc/internal/dmon"
	"dproc/internal/metrics"
	"dproc/internal/netsim"
	"dproc/internal/obs"
	"dproc/internal/simres"
	"dproc/internal/workload"
)

// wireOverhead approximates per-event framing cost (header, member ID,
// length prefixes) added to every modeled send.
const wireOverhead = 32

// modelNode is one simulated participant: publisher state (d-mon + load
// generator + uplink) and subscriber state (fluid inbox).
type modelNode struct {
	host *simres.Host
	dm   *dmon.DMon
	gen  *workload.EventGen
	link *netsim.Link

	// Subscriber side.
	queue     float64
	drainRate float64
	downUntil time.Time
	dead      bool

	// Federation cluster index (0 when gateways are off).
	cluster int
}

func runModel(s *Scenario, n int) (PointResult, error) {
	clk := clock.NewVirtual(clock.Epoch)
	start := clk.Now()

	// Seeded streams: node jitter follows the SimCluster convention; the
	// harness streams (load, churn, slow-subscriber choice) get their own
	// offsets so adding one never perturbs another.
	churnRng := rand.New(rand.NewSource(s.Seed*1_000_003 + int64(n)))
	slowRng := rand.New(rand.NewSource(s.Seed*999_983 + int64(n)))

	nodes := make([]*modelNode, n)
	for i := 0; i < n; i++ {
		host := simres.NewHost(NodeName(i), clk, s.Seed+int64(i)*7919)
		dm := dmon.New(NodeName(i), clk, host)
		if err := applyFilters(dm, s); err != nil {
			return PointResult{}, err
		}
		drain := s.Subscribers.Rate
		if s.Subscribers.SlowFraction > 0 && slowRng.Float64() < s.Subscribers.SlowFraction {
			drain = s.Subscribers.SlowRate
		}
		nodes[i] = &modelNode{
			host: host,
			dm:   dm,
			gen: workload.NewEventGen(workload.EventProfile{
				Rate:          s.Load.Rate,
				Payload:       s.Load.Payload,
				PayloadJitter: s.Load.PayloadJitter,
				BurstEvery:    s.Load.BurstEvery,
				BurstLen:      s.Load.BurstLen,
				BurstFactor:   s.Load.BurstFactor,
			}, s.Seed+int64(i)*104_729, start),
			link:      host.Link(),
			drainRate: drain,
		}
	}

	// Federation clusters: contiguous blocks, gateway = first node of each
	// block. Cross-cluster deliveries pay a second hop through the
	// publisher's gateway uplink.
	blockSize := n
	if g := s.Topology.Gateways; g > 0 {
		blockSize = (n + g - 1) / g
		for i, nd := range nodes {
			nd.cluster = i / blockSize
		}
	}
	gatewayOf := func(cluster int) *modelNode { return nodes[cluster*blockSize] }

	pt := PointResult{Nodes: n, Duration: s.Duration}
	var prop obs.Histogram
	var kills, revives, churnLeaves, churnRejoins, partitions, heals uint64

	// Partition state: when active, nodes with index < partitionK are in
	// one group, the rest in the other.
	partitioned := false
	partitionK := 0

	schedule := sortSchedule(s.Schedule)
	fired := 0

	// deliver fans one event of size bytes from publisher pi to its
	// subscriber set through the fluid links, charging each target's inbox.
	deliver := func(pi int, bytes int, now time.Time) {
		pub := nodes[pi]
		wb := bytes + wireOverhead
		fan := func(ti int) {
			if ti == pi {
				return
			}
			target := nodes[ti]
			if target.dead || now.Before(target.downUntil) {
				pt.Skips++
				return
			}
			if partitioned && (pi < partitionK) != (ti < partitionK) {
				pt.Skips++
				return
			}
			delay := pub.link.Send(wb)
			if s.Topology.Gateways > 0 && target.cluster != pub.cluster {
				delay += gatewayOf(pub.cluster).link.Send(wb)
			}
			prop.Record(int64(delay))
			pt.Deliveries++
			pt.BytesSent += uint64(wb)
			if target.queue+1 > float64(s.Subscribers.Inbox) {
				pt.Drops++
			} else {
				target.queue++
			}
		}
		if f := s.Topology.Fanout; f > 0 && f < n-1 {
			for k := 1; k <= f; k++ {
				fan((pi + k) % n)
			}
		} else {
			for ti := range nodes {
				fan(ti)
			}
		}
	}

	steps := int(s.Duration / s.Tick)
	pt.Steps = steps
	churnEvery := 0
	if s.Churn.Fraction > 0 && s.Churn.Interval > 0 {
		churnEvery = int(s.Churn.Interval / s.Tick)
		if churnEvery < 1 {
			churnEvery = 1
		}
	}

	for step := 1; step <= steps; step++ {
		clk.Advance(s.Tick)
		now := clk.Now()
		elapsed := time.Duration(step) * s.Tick

		// Fire schedule actions due at this tick boundary.
		for fired < len(schedule) && schedule[fired].At <= elapsed {
			a := schedule[fired]
			fired++
			switch a.Verb {
			case "kill":
				nodes[nodeIndex(a.Node)].dead = true
				kills++
			case "revive":
				nodes[nodeIndex(a.Node)].dead = false
				revives++
			case "partition":
				partitioned = true
				partitionK = int(a.Value)
				partitions++
			case "heal":
				partitioned = false
				heals++
			case "perturb":
				for _, nd := range nodes {
					nd.link.SetPerturbation(netsim.Mbps(a.Value))
				}
			}
		}

		// Churn boundary: each live subscriber leaves with the configured
		// probability. The rng is consumed for every node regardless so the
		// stream stays aligned whatever the current up/down set is.
		if churnEvery > 0 && step%churnEvery == 0 {
			for _, nd := range nodes {
				r := churnRng.Float64()
				if nd.dead {
					continue
				}
				if r < s.Churn.Fraction && !now.Before(nd.downUntil) {
					nd.downUntil = now.Add(s.Churn.Down)
					churnLeaves++
					// A churned-out subscriber loses its queue; it rejoins
					// empty, like a fresh channel join.
					nd.queue = 0
				}
			}
		}
		// Count rejoins (down window expired this tick).
		for _, nd := range nodes {
			if !nd.dead && !nd.downUntil.IsZero() && !now.Before(nd.downUntil) {
				nd.downUntil = time.Time{}
				churnRejoins++
			}
		}

		// Publish: monitoring reports through the real d-mon pipeline, then
		// the synthetic workload events.
		for pi, nd := range nodes {
			if nd.dead {
				continue
			}
			report, _, _ := nd.dm.PollOnce()
			if report != nil {
				pt.Reports++
				deliver(pi, len(report.Encode()), now)
			}
			for _, size := range nd.gen.Tick(now, s.Tick) {
				pt.Events++
				deliver(pi, size, now)
			}
		}

		// Drain subscriber inboxes at their per-node rates.
		dt := s.Tick.Seconds()
		for _, nd := range nodes {
			if nd.dead || now.Before(nd.downUntil) {
				continue
			}
			drained := nd.drainRate * dt
			if drained > nd.queue {
				drained = nd.queue
			}
			nd.queue -= drained
			pt.Processed += uint64(drained)
		}
	}

	pt.Prop = prop.Snapshot()
	pt.Recovery = []RecoveryCounter{
		{"kills", kills},
		{"revives", revives},
		{"churn_leaves", churnLeaves},
		{"churn_rejoins", churnRejoins},
		{"partitions", partitions},
		{"heals", heals},
	}
	return pt, nil
}

// applyFilters configures one d-mon per the runfile's [filters] section.
// Collection cadence is the scenario tick except in period mode, where the
// period is the paper's resource update period.
func applyFilters(dm *dmon.DMon, s *Scenario) error {
	period := s.Tick
	if s.Filters.Mode == FilterPeriod {
		period = s.Filters.Period
	}
	for r := metrics.Resource(0); r < metrics.NumResources; r++ {
		if err := dm.SetPeriod(r, period); err != nil {
			return err
		}
	}
	switch s.Filters.Mode {
	case FilterDiff:
		dm.SetDifferential(s.Filters.DiffPct)
	case FilterEcode:
		if err := dm.DeployFilter(0, true, s.Filters.Source); err != nil {
			return err
		}
	}
	return nil
}

// nodeIndex converts a validated nodeN name back to its index.
func nodeIndex(name string) int {
	idx := 0
	for _, c := range name[len("node"):] {
		idx = idx*10 + int(c-'0')
	}
	return idx
}

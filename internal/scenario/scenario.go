// Package scenario is the experiment harness: declarative runfiles
// describing a dproc cluster (topology, filters, load profile, churn and
// fault schedule, clock mode, sweep axes) that cmd/dprocsim parses,
// validates and executes, emitting a benchjson-compatible JSON file and a
// markdown report per run. It follows onet's simul design (one runfile per
// experiment family, a host-count sweep axis) so that every large-scale
// question — the paper's Figure 6 scaling shape at 100×, churn soaks,
// partition storms, slow-subscriber herds — is a committed text file
// instead of a hand-written test.
//
// Two engines execute a scenario:
//
//   - "model": single-threaded virtual time. Every node runs the real
//     d-mon machinery (modules, thresholds, deployed E-code filters) over
//     a simulated simres host, and fan-out travels through netsim's fluid
//     link model, which yields propagation-delay distributions that grow
//     with fan-out burst size exactly like a serialized unicast mesh.
//     Deterministic bit-for-bit under a fixed seed; scales to thousands
//     of nodes on one machine.
//   - "sockets": a real in-process cluster (core.SimCluster) over loopback
//     TCP wrapped in faultnet, so kill/stall/partition/disk verbs exercise
//     the actual transport, reconnect supervisor and WAL recovery paths.
//     Bounded to modest node counts by file descriptors and goroutines.
package scenario

import (
	"fmt"
	"time"
)

// Engine names.
const (
	EngineModel   = "model"
	EngineSockets = "sockets"
)

// Clock mode names.
const (
	ClockVirtual = "virtual"
	ClockReal    = "real"
)

// Filter modes.
const (
	FilterNone   = "none"
	FilterPeriod = "period"
	FilterDiff   = "diff"
	FilterEcode  = "ecode"
)

// Scenario is one parsed and validated runfile.
type Scenario struct {
	// Name labels the run; output files default to
	// BENCH_scenario_<name>.json and REPORT_scenario_<name>.md.
	Name string
	// Seed drives every random stream in the run: simres host jitter,
	// workload payload jitter, churn and slow-subscriber selection, and
	// faultnet latency jitter. Identical runfiles (same seed) reproduce
	// identical virtual-time runs byte-for-byte.
	Seed int64
	// Engine selects the execution engine: EngineModel or EngineSockets.
	Engine string
	// Clock selects virtual or real time. The model engine is
	// virtual-only; the sockets engine accepts both.
	Clock string
	// Duration is the (virtual or real) length of each sweep point.
	Duration time.Duration
	// Tick is the poll-loop step; every node polls once per tick.
	Tick time.Duration
	// TraceSample traces one event in N on the sockets engine (power of
	// two rounding applies); <=0 disables tracing. The model engine
	// computes propagation delay analytically and ignores it.
	TraceSample int
	// DataDir, sockets engine only: non-empty gives every node a durable
	// history store under DataDir/<node>. The literal "auto" uses a
	// temporary directory removed after the run.
	DataDir string
	// Writers, sockets engine only: reactor writer goroutines per node
	// channel (0 = scale with GOMAXPROCS, kecho's default).
	Writers int
	// Dispatch, sockets engine only: the nodes' event dispatch mode —
	// "" or "poll" (paper-fidelity polled inboxes, the default) or
	// "event" (event-driven dispatch straight off the read path).
	Dispatch string

	Topology    Topology
	Load        Load
	Filters     Filters
	Subscribers Subscribers
	Churn       Churn
	Schedule    []Action
	Output      Output

	// Path is the runfile this scenario was parsed from (reports echo it).
	Path string
}

// Topology describes the cluster shape.
type Topology struct {
	// Nodes is the sweep axis: one run per entry.
	Nodes []int
	// Fanout caps each publisher's subscriber set to the next Fanout
	// nodes on the ring; 0 means full mesh (n-1 subscribers).
	Fanout int
	// Gateways, when > 0, splits the nodes into that many federated
	// clusters; cross-cluster events relay through the cluster's gateway
	// (its first node) and pay the extra link hop. Model engine only.
	Gateways int
	// Branchings is a second sweep axis (sockets engine only): each entry
	// configures the monitoring channel's relay-tree branching factor, 0
	// meaning the flat full mesh. Every node-count point runs once per
	// branching entry, so `nodes = 16` with `branching = 0, 4` directly
	// compares flat fan-out against a branching-4 relay tree. Empty means
	// flat only.
	Branchings []int
}

// Load is the synthetic data-stream profile, per node (see
// workload.EventProfile for field semantics).
type Load struct {
	Rate          float64
	Payload       int
	PayloadJitter float64
	BurstEvery    time.Duration
	BurstLen      time.Duration
	BurstFactor   float64
}

// Filters selects the monitoring filter configuration deployed on every
// node.
type Filters struct {
	// Mode: none (publish every poll), period (publish every Period),
	// diff (differential threshold), ecode (deploy Source).
	Mode string
	// Period is the resource update period for mode "period".
	Period time.Duration
	// DiffPct is the differential threshold percentage for mode "diff".
	DiffPct float64
	// Source is the E-code filter for mode "ecode"; compiled at
	// validation time so a broken filter fails -check, not the run.
	Source string
}

// Subscribers models the consumer side: how fast subscribers drain and how
// much they buffer, plus the slow-herd knob.
type Subscribers struct {
	// Rate is the drain rate in events/second per subscriber.
	Rate float64
	// Inbox is the per-subscriber queue capacity in events; deliveries
	// beyond it are dropped (counted, like kecho's inbox Dropped).
	Inbox int
	// SlowFraction designates that fraction of nodes (seeded choice) as
	// slow subscribers draining at SlowRate.
	SlowFraction float64
	// SlowRate is the drain rate of slow subscribers.
	SlowRate float64
}

// Churn flaps subscribers: every Interval, each subscriber leaves with
// probability Fraction and returns after Down.
type Churn struct {
	Interval time.Duration
	Fraction float64
	Down     time.Duration
}

// Action is one scheduled fault/perturbation verb at a virtual (or real)
// offset from the run start.
type Action struct {
	// At is the offset from run start; the action fires at the first tick
	// boundary >= At.
	At time.Duration
	// Verb is one of: kill, revive, stall, unstall, partition, heal,
	// perturb, disk.
	Verb string
	// Node is the target node name for node-directed verbs.
	Node string
	// Value is the numeric argument: partition size (first N nodes split
	// off), perturbation Mbps, disk byte budget.
	Value float64
	// Arg is the disk fault kind ("enospc", "failsync") or the queryall
	// query text ("p99 loadavg last 30s").
	Arg string
	// Line is the runfile line the action was parsed from.
	Line int
}

// Output names the run's artifacts.
type Output struct {
	// Dir is the directory artifacts are written into ("." by default).
	Dir string
	// JSON is the benchjson-compatible results file name.
	JSON string
	// Report is the markdown report file name.
	Report string
}

// Defaults returns a scenario with every knob at its built-in default;
// the parser overlays runfile values on top of this.
func Defaults() Scenario {
	return Scenario{
		Seed:        1,
		Engine:      EngineModel,
		Clock:       ClockVirtual,
		Duration:    30 * time.Second,
		Tick:        time.Second,
		TraceSample: 1,
		Topology:    Topology{Nodes: []int{8}},
		Load:        Load{Rate: 1, Payload: 64, BurstFactor: 1},
		Filters:     Filters{Mode: FilterPeriod, Period: time.Second, DiffPct: 15},
		Subscribers: Subscribers{Rate: 10000, Inbox: 4096, SlowRate: 50},
		Output:      Output{Dir: "."},
	}
}

// JSONPath returns the resolved JSON artifact path.
func (s *Scenario) JSONPath() string {
	name := s.Output.JSON
	if name == "" {
		name = fmt.Sprintf("BENCH_scenario_%s.json", s.Name)
	}
	return joinDir(s.Output.Dir, name)
}

// ReportPath returns the resolved markdown report path.
func (s *Scenario) ReportPath() string {
	name := s.Output.Report
	if name == "" {
		name = fmt.Sprintf("REPORT_scenario_%s.md", s.Name)
	}
	return joinDir(s.Output.Dir, name)
}

func joinDir(dir, name string) string {
	if dir == "" || dir == "." {
		return name
	}
	return dir + "/" + name
}

// NodeName returns the canonical name of node i, matching
// core.SimCluster's naming.
func NodeName(i int) string { return fmt.Sprintf("node%d", i) }

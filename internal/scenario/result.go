package scenario

import (
	"time"

	"dproc/internal/obs"
)

// PointResult is the harvest of one sweep point: the counters every engine
// fills plus the merged propagation-delay distribution. All values derive
// from the run itself (virtual-time runs contain no wall-clock input), which
// is what makes reports byte-reproducible under a fixed seed.
type PointResult struct {
	// Nodes is the sweep-point node count.
	Nodes int
	// Branching is the sweep point's relay-tree branching factor (0 = flat
	// full mesh).
	Branching int
	// Steps is how many poll ticks ran.
	Steps int
	// Duration is the run length (virtual for the model engine).
	Duration time.Duration

	// Reports counts monitoring reports published by d-mons (post-filter).
	Reports uint64
	// Events counts synthetic workload events published.
	Events uint64
	// Deliveries counts per-subscriber event deliveries.
	Deliveries uint64
	// Drops counts deliveries lost to full subscriber inboxes.
	Drops uint64
	// Skips counts deliveries not attempted because the target was down,
	// churned out or across a partition.
	Skips uint64
	// Processed counts events drained by subscribers.
	Processed uint64
	// BytesSent counts payload bytes pushed onto the network.
	BytesSent uint64

	// Prop is the merged cross-node propagation-delay distribution in
	// nanoseconds.
	Prop obs.Snapshot

	// Recovery holds engine-specific fault/recovery counters in a fixed
	// order (slice, not map, so report rendering is deterministic).
	Recovery []RecoveryCounter
}

// RecoveryCounter is one named fault/recovery counter.
type RecoveryCounter struct {
	Name  string
	Value uint64
}

// Throughput returns delivered events per second of run time.
func (p *PointResult) Throughput() float64 {
	if p.Duration <= 0 {
		return 0
	}
	return float64(p.Deliveries) / p.Duration.Seconds()
}

// PublishRate returns published events (reports + workload) per second.
func (p *PointResult) PublishRate() float64 {
	if p.Duration <= 0 {
		return 0
	}
	return float64(p.Reports+p.Events) / p.Duration.Seconds()
}

// RunResult is a full scenario execution: one PointResult per sweep point,
// in runfile order.
type RunResult struct {
	Scenario *Scenario
	Points   []PointResult
}

// Run executes every sweep point of the scenario with the engine it names.
// logf (may be nil) receives one progress line per sweep point.
func Run(s *Scenario, logf func(format string, args ...any)) (*RunResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &RunResult{Scenario: s}
	// The sweep is the cross-product of the node axis and the branching axis
	// (flat-only when no branching entries are declared), in runfile order.
	branchings := s.Topology.Branchings
	if len(branchings) == 0 {
		branchings = []int{0}
	}
	for _, n := range s.Topology.Nodes {
		for _, b := range branchings {
			logf("scenario %s: engine=%s nodes=%d branching=%d duration=%s", s.Name, s.Engine, n, b, s.Duration)
			var (
				pt  PointResult
				err error
			)
			switch s.Engine {
			case EngineModel:
				pt, err = runModel(s, n)
			case EngineSockets:
				pt, err = runSockets(s, n, b)
			default:
				// Validate rejects this; keep the error for direct callers.
				err = &ParseError{File: s.Path, Section: "scenario", Key: "engine", Msg: "unknown engine " + s.Engine}
			}
			if err != nil {
				return nil, err
			}
			pt.Branching = b
			logf("  done: %d reports, %d deliveries, %d drops, prop p99 %s",
				pt.Reports, pt.Deliveries, pt.Drops, time.Duration(pt.Prop.Quantile(0.99)))
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// golden is a runfile exercising every section and value form: quoted and
// bare scalars, comma sweep lists, durations, repeated schedule keys,
// comments (inline and full-line) and a triple-quoted E-code block.
const golden = `
# full-surface runfile
[scenario]
name     = "golden"
seed     = 99
engine   = "model"
clock    = "virtual"          # the model engine requires this
duration = "20s"
tick     = "500ms"

[topology]
nodes    = 4, 8, 16
fanout   = 3
gateways = 2

[load]
rate           = 2.5
payload        = 128
payload_jitter = 0.1
burst_every    = "5s"
burst_len      = "1s"
burst_factor   = 4.0

[filters]
mode   = "ecode"
source = """
  int n = 0;
  for (int i = 0; i < ninput; i++) {
    output[n] = input[i];
    n++;
  }
"""

[subscribers]
rate          = 500
inbox         = 256
slow_fraction = 0.25
slow_rate     = 10

[churn]
interval = "4s"
fraction = 0.5
down     = "2s"

[schedule]
at = "5s kill node1"
at = "8s revive node1"
at = "10s partition 2"
at = "12s heal"
at = "15s perturb 50"

[output]
dir    = "out"
json   = "custom.json"
report = "custom.md"
`

func TestParseGolden(t *testing.T) {
	s, err := Parse(golden, "golden.toml")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "golden" || s.Seed != 99 || s.Engine != EngineModel || s.Clock != ClockVirtual {
		t.Fatalf("scenario section: %+v", s)
	}
	if s.Duration != 20*time.Second || s.Tick != 500*time.Millisecond {
		t.Fatalf("durations: %v / %v", s.Duration, s.Tick)
	}
	if want := []int{4, 8, 16}; len(s.Topology.Nodes) != 3 || s.Topology.Nodes[0] != want[0] || s.Topology.Nodes[2] != want[2] {
		t.Fatalf("nodes sweep: %v", s.Topology.Nodes)
	}
	if s.Topology.Fanout != 3 || s.Topology.Gateways != 2 {
		t.Fatalf("topology: %+v", s.Topology)
	}
	if s.Load.Rate != 2.5 || s.Load.Payload != 128 || s.Load.BurstFactor != 4.0 {
		t.Fatalf("load: %+v", s.Load)
	}
	if s.Filters.Mode != FilterEcode || !strings.Contains(s.Filters.Source, "output[n] = input[i]") {
		t.Fatalf("filters: %+v", s.Filters)
	}
	if s.Subscribers.SlowFraction != 0.25 || s.Subscribers.SlowRate != 10 {
		t.Fatalf("subscribers: %+v", s.Subscribers)
	}
	if s.Churn.Interval != 4*time.Second || s.Churn.Fraction != 0.5 {
		t.Fatalf("churn: %+v", s.Churn)
	}
	if len(s.Schedule) != 5 {
		t.Fatalf("schedule: %d actions", len(s.Schedule))
	}
	a := s.Schedule[2]
	if a.At != 10*time.Second || a.Verb != "partition" || int(a.Value) != 2 {
		t.Fatalf("schedule[2]: %+v", a)
	}
	if s.Schedule[0].Line == 0 {
		t.Fatal("schedule action lost its line number")
	}
	if got := s.JSONPath(); got != "out/custom.json" {
		t.Fatalf("JSONPath = %q", got)
	}
	if got := s.ReportPath(); got != "out/custom.md" {
		t.Fatalf("ReportPath = %q", got)
	}
}

func TestParseDefaultsApply(t *testing.T) {
	s, err := Parse("[scenario]\nname = \"d\"\n", "d.toml")
	if err != nil {
		t.Fatal(err)
	}
	def := Defaults()
	if s.Engine != def.Engine || s.Tick != def.Tick || s.Subscribers.Inbox != def.Subscribers.Inbox {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted scenario should validate: %v", err)
	}
}

// TestParseErrors is the malformed-input table: every entry must fail, and
// the diagnostic must carry the expected fragments (section, key, line).
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want []string // substrings of the error message
	}{
		{"missing name", "[scenario]\nseed = 1\n", []string{"[scenario]", "name", "required"}},
		{"unknown section", "[scenario]\nname = \"x\"\n[warp]\nspeed = 9\n", []string{"3:", "unknown section [warp]"}},
		{"unknown key", "[scenario]\nname = \"x\"\nwarp = 9\n", []string{"3:", "[scenario]", "warp", "unknown key"}},
		{"key before section", "foo = 1\n", []string{"1:", "before any [section]"}},
		{"missing equals", "[scenario]\nname \"x\"\n", []string{"2:", "key = value"}},
		{"bad int", "[scenario]\nname = \"x\"\nseed = lots\n", []string{"3:", "seed", "integer"}},
		{"bad duration", "[scenario]\nname = \"x\"\nduration = \"sideways\"\n", []string{"3:", "duration"}},
		{"bad node list", "[scenario]\nname = \"x\"\n[topology]\nnodes = 4, eight\n", []string{"4:", "nodes", "integers"}},
		{"unterminated heredoc", "[scenario]\nname = \"x\"\n[filters]\nsource = \"\"\"\nnever closed\n", []string{"4:", "unterminated"}},
		{"unknown verb", "[scenario]\nname = \"x\"\n[schedule]\nat = \"5s explode node1\"\n", []string{"4:", "unknown verb"}},
		{"bad offset", "[schedule]\nat = \"soon kill node1\"\n", []string{"2:", "bad offset"}},
		{"schedule only takes at", "[schedule]\nwhen = \"5s kill node1\"\n", []string{"2:", "[schedule]", "when"}},
		{"malformed header", "[scenario\nname = \"x\"\n", []string{"1:", "malformed section header"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text, "bad.toml")
			if err == nil {
				t.Fatalf("parse accepted:\n%s", tc.text)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *ParseError", err)
			}
			msg := err.Error()
			for _, frag := range tc.want {
				if !strings.Contains(msg, frag) {
					t.Errorf("error %q missing %q", msg, frag)
				}
			}
		})
	}
}

// TestValidateErrors covers cross-field rules: contradictory engine/clock
// and engine/verb combos, sweep bounds, node targets and filter compilation.
func TestValidateErrors(t *testing.T) {
	base := func() *Scenario {
		s := Defaults()
		s.Name = "v"
		s.Path = "v.toml"
		return &s
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   []string
	}{
		{"model needs virtual", func(s *Scenario) { s.Clock = ClockReal }, []string{"model engine", "virtual"}},
		{"unknown engine", func(s *Scenario) { s.Engine = "quantum" }, []string{"engine", "quantum"}},
		{"sockets node cap", func(s *Scenario) { s.Engine = EngineSockets; s.Clock = ClockReal; s.Topology.Nodes = []int{128} }, []string{"128", "cap"}},
		{"model node cap", func(s *Scenario) { s.Topology.Nodes = []int{9000} }, []string{"9000", "cap"}},
		{"too many sweep points", func(s *Scenario) {
			s.Topology.Nodes = make([]int, 17)
			for i := range s.Topology.Nodes {
				s.Topology.Nodes[i] = i + 2
			}
		}, []string{"sweep points"}},
		{"one-node point", func(s *Scenario) { s.Topology.Nodes = []int{1} }, []string{"at least 2"}},
		{"tick beyond duration", func(s *Scenario) { s.Tick = time.Minute }, []string{"tick", "duration"}},
		{"data_dir on model", func(s *Scenario) { s.DataDir = "auto" }, []string{"data_dir", "sockets"}},
		{"gateways on sockets", func(s *Scenario) { s.Engine = EngineSockets; s.Topology.Gateways = 2 }, []string{"gateways", "model"}},
		{"churn without down", func(s *Scenario) { s.Churn.Fraction = 0.5; s.Churn.Interval = time.Second }, []string{"down"}},
		{"burst mismatch", func(s *Scenario) { s.Load.BurstEvery = time.Second }, []string{"burst_len", "together"}},
		{"jitter range", func(s *Scenario) { s.Load.PayloadJitter = 2 }, []string{"payload_jitter", "[0,1]"}},
		{"ecode must compile", func(s *Scenario) { s.Filters.Mode = FilterEcode; s.Filters.Source = "$$$ garbage" }, []string{"source", "compile"}},
		{"slow fraction sockets", func(s *Scenario) {
			s.Engine = EngineSockets
			s.Clock = ClockReal
			s.Topology.Nodes = []int{4}
			s.Subscribers.SlowFraction = 0.5
		}, []string{"slow_fraction", "model"}},
		{"perturb on sockets", func(s *Scenario) {
			s.Engine = EngineSockets
			s.Clock = ClockReal
			s.Topology.Nodes = []int{4}
			s.Schedule = []Action{{At: time.Second, Verb: "perturb", Value: 50, Line: 7}}
		}, []string{"perturb", "model"}},
		{"disk on model", func(s *Scenario) {
			s.Schedule = []Action{{At: time.Second, Verb: "disk", Node: "node0", Arg: "failsync", Line: 9}}
		}, []string{"disk", "sockets"}},
		{"node beyond smallest point", func(s *Scenario) {
			s.Schedule = []Action{{At: time.Second, Verb: "kill", Node: "node12", Line: 4}}
		}, []string{"node12", "smallest sweep point"}},
		{"partition too large", func(s *Scenario) {
			s.Schedule = []Action{{At: time.Second, Verb: "partition", Value: 8, Line: 4}}
		}, []string{"partition size"}},
		{"action beyond duration", func(s *Scenario) {
			s.Schedule = []Action{{At: time.Hour, Verb: "heal", Line: 4}}
		}, []string{"beyond the run duration"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a bad scenario")
			}
			msg := err.Error()
			for _, frag := range tc.want {
				if !strings.Contains(msg, frag) {
					t.Errorf("error %q missing %q", msg, frag)
				}
			}
		})
	}
}

func TestValidateErrorCarriesScheduleLine(t *testing.T) {
	s := Defaults()
	s.Name = "v"
	s.Path = "v.toml"
	s.Schedule = []Action{{At: time.Hour, Verb: "heal", Line: 42}}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "v.toml:42:") {
		t.Fatalf("want line-carrying error, got %v", err)
	}
}

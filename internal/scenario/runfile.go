// The runfile parser. The format is TOML-like key/value sections:
//
//	# comment
//	[scenario]
//	name     = "scaling"
//	duration = "30s"
//
//	[topology]
//	nodes = 8,64,256,1000        # a comma list is a sweep axis
//
//	[filters]
//	source = """
//	  ... multi-line E-code ...
//	"""
//
//	[schedule]
//	at = "10s partition 4"       # repeated `at` keys build the schedule
//	at = "20s heal"
//
// Unknown sections and keys are errors, not warnings, and every error names
// the offending section, key and line — a runfile that parses is a runfile
// the harness fully understands.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// ParseError is a runfile diagnostic pointing at the offending line.
type ParseError struct {
	File    string
	Line    int
	Section string
	Key     string
	Msg     string
}

// Error renders "file:line: [section] key: msg".
func (e *ParseError) Error() string {
	var sb strings.Builder
	if e.File != "" {
		fmt.Fprintf(&sb, "%s:", e.File)
	}
	if e.Line > 0 {
		fmt.Fprintf(&sb, "%d:", e.Line)
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	if e.Section != "" {
		fmt.Fprintf(&sb, "[%s] ", e.Section)
	}
	if e.Key != "" {
		fmt.Fprintf(&sb, "%s: ", e.Key)
	}
	sb.WriteString(e.Msg)
	return sb.String()
}

// LoadFile reads, parses and validates a runfile.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(string(data), filepath.Base(path))
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Parse parses runfile text. file labels diagnostics (use the base name).
// Parse does not validate cross-field consistency; call Validate on the
// result.
func Parse(text, file string) (*Scenario, error) {
	s := Defaults()
	s.Path = file
	p := &parser{file: file, lines: strings.Split(text, "\n"), s: &s}
	if err := p.run(); err != nil {
		return nil, err
	}
	if s.Name == "" {
		return nil, &ParseError{File: file, Section: "scenario", Key: "name", Msg: "required key missing"}
	}
	return &s, nil
}

type parser struct {
	file    string
	lines   []string
	i       int // current line index
	section string
	s       *Scenario

	// seenNodes tracks whether [topology] nodes was set explicitly, so an
	// empty list can be distinguished from the default.
	seenNodes bool
}

func (p *parser) errf(line int, key, format string, args ...any) error {
	return &ParseError{File: p.file, Line: line, Section: p.section, Key: key, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) run() error {
	for p.i = 0; p.i < len(p.lines); p.i++ {
		lineNo := p.i + 1
		line := stripComment(p.lines[p.i])
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return p.errf(lineNo, "", "malformed section header %q", line)
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			if !knownSection(name) {
				return p.errf(lineNo, "", "unknown section [%s] (known: scenario, topology, load, filters, subscribers, churn, schedule, output)", name)
			}
			p.section = name
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return p.errf(lineNo, "", "expected `key = value`, got %q", line)
		}
		if p.section == "" {
			return p.errf(lineNo, "", "key before any [section] header")
		}
		key := strings.TrimSpace(line[:eq])
		raw := strings.TrimSpace(line[eq+1:])
		val, err := p.value(raw, lineNo, key)
		if err != nil {
			return err
		}
		if err := p.assign(key, val, lineNo); err != nil {
			return err
		}
	}
	return nil
}

// value resolves a raw right-hand side, consuming continuation lines for
// triple-quoted strings.
func (p *parser) value(raw string, lineNo int, key string) (string, error) {
	if strings.HasPrefix(raw, `"""`) {
		rest := raw[3:]
		if idx := strings.Index(rest, `"""`); idx >= 0 {
			return rest[:idx], nil
		}
		var sb strings.Builder
		sb.WriteString(rest)
		for p.i++; p.i < len(p.lines); p.i++ {
			l := p.lines[p.i]
			if idx := strings.Index(l, `"""`); idx >= 0 {
				sb.WriteString("\n" + l[:idx])
				return sb.String(), nil
			}
			sb.WriteString("\n" + l)
		}
		return "", p.errf(lineNo, key, `unterminated """ string`)
	}
	return raw, nil
}

// stripComment removes a trailing # comment, respecting double quotes.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func knownSection(name string) bool {
	switch name {
	case "scenario", "topology", "load", "filters", "subscribers", "churn", "schedule", "output":
		return true
	}
	return false
}

// assign routes one key/value pair to its Scenario field. Every branch
// reports type errors with the line number.
func (p *parser) assign(key, val string, line int) error {
	s := p.s
	switch p.section {
	case "scenario":
		switch key {
		case "name":
			s.Name = unquote(val)
			if s.Name == "" {
				return p.errf(line, key, "must not be empty")
			}
			return nil
		case "seed":
			return p.setInt64(&s.Seed, val, line, key)
		case "engine":
			s.Engine = unquote(val)
			return nil
		case "clock":
			s.Clock = unquote(val)
			return nil
		case "duration":
			return p.setDuration(&s.Duration, val, line, key)
		case "tick":
			return p.setDuration(&s.Tick, val, line, key)
		case "trace_sample":
			return p.setInt(&s.TraceSample, val, line, key)
		case "data_dir":
			s.DataDir = unquote(val)
			return nil
		case "writers":
			return p.setInt(&s.Writers, val, line, key)
		case "dispatch":
			s.Dispatch = unquote(val)
			return nil
		}
	case "topology":
		switch key {
		case "nodes":
			list, err := parseIntList(val)
			if err != nil {
				return p.errf(line, key, "%v", err)
			}
			s.Topology.Nodes = list
			p.seenNodes = true
			return nil
		case "fanout":
			return p.setInt(&s.Topology.Fanout, val, line, key)
		case "gateways":
			return p.setInt(&s.Topology.Gateways, val, line, key)
		case "branching":
			list, err := parseIntList(val)
			if err != nil {
				return p.errf(line, key, "%v", err)
			}
			s.Topology.Branchings = list
			return nil
		}
	case "load":
		switch key {
		case "rate":
			return p.setFloat(&s.Load.Rate, val, line, key)
		case "payload":
			return p.setInt(&s.Load.Payload, val, line, key)
		case "payload_jitter":
			return p.setFloat(&s.Load.PayloadJitter, val, line, key)
		case "burst_every":
			return p.setDuration(&s.Load.BurstEvery, val, line, key)
		case "burst_len":
			return p.setDuration(&s.Load.BurstLen, val, line, key)
		case "burst_factor":
			return p.setFloat(&s.Load.BurstFactor, val, line, key)
		}
	case "filters":
		switch key {
		case "mode":
			s.Filters.Mode = unquote(val)
			return nil
		case "period":
			return p.setDuration(&s.Filters.Period, val, line, key)
		case "diff_pct":
			return p.setFloat(&s.Filters.DiffPct, val, line, key)
		case "source":
			s.Filters.Source = val
			return nil
		}
	case "subscribers":
		switch key {
		case "rate":
			return p.setFloat(&s.Subscribers.Rate, val, line, key)
		case "inbox":
			return p.setInt(&s.Subscribers.Inbox, val, line, key)
		case "slow_fraction":
			return p.setFloat(&s.Subscribers.SlowFraction, val, line, key)
		case "slow_rate":
			return p.setFloat(&s.Subscribers.SlowRate, val, line, key)
		}
	case "churn":
		switch key {
		case "interval":
			return p.setDuration(&s.Churn.Interval, val, line, key)
		case "fraction":
			return p.setFloat(&s.Churn.Fraction, val, line, key)
		case "down":
			return p.setDuration(&s.Churn.Down, val, line, key)
		}
	case "schedule":
		if key != "at" {
			return p.errf(line, key, "unknown key (the schedule section only takes repeated `at = \"<offset> <verb> ...\"` entries)")
		}
		act, err := parseAction(unquote(val))
		if err != nil {
			return p.errf(line, key, "%v", err)
		}
		act.Line = line
		s.Schedule = append(s.Schedule, act)
		return nil
	case "output":
		switch key {
		case "dir":
			s.Output.Dir = unquote(val)
			return nil
		case "json":
			s.Output.JSON = unquote(val)
			return nil
		case "report":
			s.Output.Report = unquote(val)
			return nil
		}
	}
	return p.errf(line, key, "unknown key in [%s]", p.section)
}

// --- typed setters ---

func (p *parser) setInt(dst *int, val string, line int, key string) error {
	n, err := strconv.Atoi(unquote(val))
	if err != nil {
		return p.errf(line, key, "want an integer, got %q", val)
	}
	*dst = n
	return nil
}

func (p *parser) setInt64(dst *int64, val string, line int, key string) error {
	n, err := strconv.ParseInt(unquote(val), 10, 64)
	if err != nil {
		return p.errf(line, key, "want an integer, got %q", val)
	}
	*dst = n
	return nil
}

func (p *parser) setFloat(dst *float64, val string, line int, key string) error {
	f, err := strconv.ParseFloat(unquote(val), 64)
	if err != nil {
		return p.errf(line, key, "want a number, got %q", val)
	}
	*dst = f
	return nil
}

func (p *parser) setDuration(dst *time.Duration, val string, line int, key string) error {
	d, err := time.ParseDuration(unquote(val))
	if err != nil {
		return p.errf(line, key, "want a duration like \"30s\", got %q", val)
	}
	*dst = d
	return nil
}

func unquote(v string) string {
	v = strings.TrimSpace(v)
	if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
		return v[1 : len(v)-1]
	}
	return v
}

func parseIntList(val string) ([]int, error) {
	parts := strings.Split(val, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(unquote(part))
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("want a comma list of integers, got %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseAction parses one schedule entry: "<offset> <verb> [args...]".
func parseAction(text string) (Action, error) {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return Action{}, fmt.Errorf("want \"<offset> <verb> [args]\", got %q", text)
	}
	at, err := time.ParseDuration(fields[0])
	if err != nil {
		return Action{}, fmt.Errorf("bad offset %q: %v", fields[0], err)
	}
	if at < 0 {
		return Action{}, fmt.Errorf("negative offset %q", fields[0])
	}
	a := Action{At: at, Verb: fields[1]}
	args := fields[2:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("verb %q wants %d argument(s), got %d", a.Verb, n, len(args))
		}
		return nil
	}
	switch a.Verb {
	case "kill", "revive", "stall", "unstall":
		if err := need(1); err != nil {
			return Action{}, err
		}
		a.Node = args[0]
	case "partition":
		if err := need(1); err != nil {
			return Action{}, err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return Action{}, fmt.Errorf("partition wants a positive node count, got %q", args[0])
		}
		a.Value = float64(n)
	case "heal":
		if err := need(0); err != nil {
			return Action{}, err
		}
	case "perturb":
		if err := need(1); err != nil {
			return Action{}, err
		}
		mbps, err := strconv.ParseFloat(args[0], 64)
		if err != nil || mbps < 0 {
			return Action{}, fmt.Errorf("perturb wants a non-negative Mbps value, got %q", args[0])
		}
		a.Value = mbps
	case "disk":
		// disk <node> enospc <bytes> | disk <node> failsync
		if len(args) < 2 {
			return Action{}, fmt.Errorf("disk wants \"<node> enospc <bytes>\" or \"<node> failsync\"")
		}
		a.Node = args[0]
		a.Arg = args[1]
		switch a.Arg {
		case "enospc":
			if len(args) != 3 {
				return Action{}, fmt.Errorf("disk enospc wants a byte budget")
			}
			n, err := strconv.Atoi(args[2])
			if err != nil || n < 0 {
				return Action{}, fmt.Errorf("disk enospc wants a non-negative byte budget, got %q", args[2])
			}
			a.Value = float64(n)
		case "failsync":
			if len(args) != 2 {
				return Action{}, fmt.Errorf("disk failsync takes no further arguments")
			}
		default:
			return Action{}, fmt.Errorf("unknown disk fault %q (want enospc or failsync)", a.Arg)
		}
	case "queryall":
		// queryall <agg> <metric> [window] — the query text, verbatim.
		if len(args) < 2 {
			return Action{}, fmt.Errorf("queryall wants a query, e.g. \"queryall p99 loadavg last 30s\"")
		}
		a.Arg = strings.Join(args, " ")
	default:
		return Action{}, fmt.Errorf("unknown verb %q (want kill, revive, stall, unstall, partition, heal, perturb, disk or queryall)", a.Verb)
	}
	return a, nil
}

package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dproc/internal/clock"
	"dproc/internal/dmon"
	"dproc/internal/ecode"
	"dproc/internal/query"
	"dproc/internal/tsdb"
)

// Limits the validator enforces. The sockets engine runs real goroutines and
// file descriptors per node; the model engine is single-threaded but still
// O(nodes²) per tick at full mesh.
const (
	maxSocketNodes = 64
	maxModelNodes  = 5000
	maxSweepPoints = 16
)

// Validate checks cross-field consistency: engine/clock combos, verb
// applicability, sweep-axis bounds, node-name targets, and that any E-code
// filter source actually compiles. Errors carry the runfile line where the
// offending value was declared when one is known.
func (s *Scenario) Validate() error {
	fail := func(section, key, format string, args ...any) error {
		return &ParseError{File: s.Path, Section: section, Key: key, Msg: fmt.Sprintf(format, args...)}
	}

	if s.Name == "" {
		return fail("scenario", "name", "required key missing")
	}
	if strings.ContainsAny(s.Name, "/\\ ") {
		return fail("scenario", "name", "must be a plain file-name token, got %q", s.Name)
	}

	switch s.Engine {
	case EngineModel, EngineSockets:
	default:
		return fail("scenario", "engine", "unknown engine %q (want %q or %q)", s.Engine, EngineModel, EngineSockets)
	}
	switch s.Clock {
	case ClockVirtual, ClockReal:
	default:
		return fail("scenario", "clock", "unknown clock %q (want %q or %q)", s.Clock, ClockVirtual, ClockReal)
	}
	if s.Engine == EngineModel && s.Clock != ClockVirtual {
		return fail("scenario", "clock", "the model engine is virtual-time only; use clock = \"virtual\" or engine = \"sockets\"")
	}

	if s.Duration <= 0 {
		return fail("scenario", "duration", "must be positive, got %v", s.Duration)
	}
	if s.Tick <= 0 {
		return fail("scenario", "tick", "must be positive, got %v", s.Tick)
	}
	if s.Tick > s.Duration {
		return fail("scenario", "tick", "tick %v exceeds duration %v", s.Tick, s.Duration)
	}
	if steps := s.Duration / s.Tick; steps > 1_000_000 {
		return fail("scenario", "tick", "duration/tick = %d steps; cap is 1000000", steps)
	}

	if s.DataDir != "" && s.Engine != EngineSockets {
		return fail("scenario", "data_dir", "durable stores need engine = \"sockets\" (the model engine has no disk)")
	}
	if s.Writers < 0 {
		return fail("scenario", "writers", "must be >= 0 (0 = kecho's GOMAXPROCS-scaled default), got %d", s.Writers)
	}
	if s.Writers > 0 && s.Engine != EngineSockets {
		return fail("scenario", "writers", "writer pools belong to the real transport; use engine = \"sockets\"")
	}
	switch s.Dispatch {
	case "", "poll", "event":
	default:
		return fail("scenario", "dispatch", "unknown dispatch %q (want \"poll\" or \"event\")", s.Dispatch)
	}
	if s.Dispatch == "event" && s.Engine != EngineSockets {
		return fail("scenario", "dispatch", "event-driven dispatch runs on the real transport; use engine = \"sockets\"")
	}

	// Topology / sweep axis.
	if len(s.Topology.Nodes) == 0 {
		return fail("topology", "nodes", "empty sweep axis")
	}
	if len(s.Topology.Nodes) > maxSweepPoints {
		return fail("topology", "nodes", "%d sweep points; cap is %d", len(s.Topology.Nodes), maxSweepPoints)
	}
	maxNodes := maxModelNodes
	if s.Engine == EngineSockets {
		maxNodes = maxSocketNodes
	}
	minN := s.Topology.Nodes[0]
	for _, n := range s.Topology.Nodes {
		if n < 2 {
			return fail("topology", "nodes", "each sweep point needs at least 2 nodes, got %d", n)
		}
		if n > maxNodes {
			return fail("topology", "nodes", "%d nodes exceeds the %s engine's cap of %d", n, s.Engine, maxNodes)
		}
		if n < minN {
			minN = n
		}
	}
	if s.Topology.Fanout < 0 {
		return fail("topology", "fanout", "must be >= 0 (0 = full mesh), got %d", s.Topology.Fanout)
	}
	if s.Topology.Gateways < 0 {
		return fail("topology", "gateways", "must be >= 0, got %d", s.Topology.Gateways)
	}
	if s.Topology.Gateways > 0 {
		if s.Engine != EngineModel {
			return fail("topology", "gateways", "federation gateways are model-engine only")
		}
		if s.Topology.Gateways > minN {
			return fail("topology", "gateways", "%d gateways but the smallest sweep point has only %d nodes", s.Topology.Gateways, minN)
		}
	}
	if len(s.Topology.Branchings) > maxSweepPoints {
		return fail("topology", "branching", "%d sweep points; cap is %d", len(s.Topology.Branchings), maxSweepPoints)
	}
	for _, b := range s.Topology.Branchings {
		if b < 0 {
			return fail("topology", "branching", "must be >= 0 (0 = flat full mesh), got %d", b)
		}
		if b > 0 && s.Engine != EngineSockets {
			return fail("topology", "branching", "relay trees run on the real transport; use engine = \"sockets\"")
		}
	}
	if len(s.Topology.Nodes)*max(1, len(s.Topology.Branchings)) > maxSweepPoints {
		return fail("topology", "branching", "nodes × branching = %d sweep points; cap is %d",
			len(s.Topology.Nodes)*len(s.Topology.Branchings), maxSweepPoints)
	}

	// Load.
	if s.Load.Rate < 0 {
		return fail("load", "rate", "must be >= 0, got %v", s.Load.Rate)
	}
	if s.Load.Payload < 0 {
		return fail("load", "payload", "must be >= 0, got %d", s.Load.Payload)
	}
	if s.Load.PayloadJitter < 0 || s.Load.PayloadJitter > 1 {
		return fail("load", "payload_jitter", "must be in [0,1], got %v", s.Load.PayloadJitter)
	}
	if s.Load.BurstEvery < 0 || s.Load.BurstLen < 0 {
		return fail("load", "burst_every", "burst windows must be >= 0")
	}
	if (s.Load.BurstEvery > 0) != (s.Load.BurstLen > 0) {
		return fail("load", "burst_len", "burst_every and burst_len must be set together")
	}
	if s.Load.BurstLen > s.Load.BurstEvery {
		return fail("load", "burst_len", "burst_len %v exceeds burst_every %v", s.Load.BurstLen, s.Load.BurstEvery)
	}
	if s.Load.BurstFactor <= 0 {
		return fail("load", "burst_factor", "must be > 0, got %v", s.Load.BurstFactor)
	}

	// Filters.
	switch s.Filters.Mode {
	case FilterNone, FilterPeriod, FilterDiff:
	case FilterEcode:
		if strings.TrimSpace(s.Filters.Source) == "" {
			return fail("filters", "source", "mode = \"ecode\" needs a source")
		}
		if _, err := ecode.CompileCached(s.Filters.Source, dmon.FilterSpec()); err != nil {
			return fail("filters", "source", "E-code does not compile: %v", err)
		}
	default:
		return fail("filters", "mode", "unknown mode %q (want none, period, diff or ecode)", s.Filters.Mode)
	}
	if s.Filters.Mode == FilterPeriod && s.Filters.Period <= 0 {
		return fail("filters", "period", "must be positive, got %v", s.Filters.Period)
	}
	if s.Filters.Mode == FilterDiff && (s.Filters.DiffPct <= 0 || s.Filters.DiffPct > 100) {
		return fail("filters", "diff_pct", "must be in (0,100], got %v", s.Filters.DiffPct)
	}

	// Subscribers.
	if s.Subscribers.Rate <= 0 {
		return fail("subscribers", "rate", "must be > 0, got %v", s.Subscribers.Rate)
	}
	if s.Subscribers.Inbox <= 0 {
		return fail("subscribers", "inbox", "must be > 0, got %d", s.Subscribers.Inbox)
	}
	if s.Subscribers.SlowFraction < 0 || s.Subscribers.SlowFraction > 1 {
		return fail("subscribers", "slow_fraction", "must be in [0,1], got %v", s.Subscribers.SlowFraction)
	}
	if s.Subscribers.SlowFraction > 0 && s.Subscribers.SlowRate <= 0 {
		return fail("subscribers", "slow_rate", "must be > 0 when slow_fraction is set, got %v", s.Subscribers.SlowRate)
	}
	if s.Subscribers.SlowFraction > 0 && s.Engine != EngineModel {
		return fail("subscribers", "slow_fraction", "slow-subscriber drain rates are part of the model engine's fluid queues; use engine = \"model\"")
	}

	// Churn.
	if s.Churn.Interval < 0 || s.Churn.Down < 0 {
		return fail("churn", "interval", "durations must be >= 0")
	}
	if s.Churn.Fraction < 0 || s.Churn.Fraction > 1 {
		return fail("churn", "fraction", "must be in [0,1], got %v", s.Churn.Fraction)
	}
	if s.Churn.Fraction > 0 && s.Churn.Interval == 0 {
		return fail("churn", "interval", "fraction is set but interval is zero")
	}
	if s.Churn.Fraction > 0 && s.Churn.Down == 0 {
		return fail("churn", "down", "fraction is set but down time is zero")
	}

	// Schedule.
	for _, a := range s.Schedule {
		afail := func(format string, args ...any) error {
			return &ParseError{File: s.Path, Line: a.Line, Section: "schedule", Key: "at", Msg: fmt.Sprintf(format, args...)}
		}
		if a.At > s.Duration {
			return afail("offset %v is beyond the run duration %v", a.At, s.Duration)
		}
		switch a.Verb {
		case "kill", "revive", "stall", "unstall":
			if err := checkNodeTarget(a.Node, minN); err != nil {
				return afail("%v", err)
			}
			if a.Verb == "stall" || a.Verb == "unstall" {
				if s.Engine != EngineSockets {
					return afail("%s stalls the real transport's writes; it needs engine = \"sockets\"", a.Verb)
				}
			}
		case "partition":
			k := int(a.Value)
			if k <= 0 || k >= minN {
				return afail("partition size %d must be in (0,%d) for the smallest sweep point", k, minN)
			}
		case "heal":
		case "perturb":
			if s.Engine != EngineModel {
				return afail("perturb shapes the model engine's fluid links; it needs engine = \"model\"")
			}
		case "queryall":
			if s.Engine != EngineSockets {
				return afail("queryall scatter-gathers over real admin sockets; it needs engine = \"sockets\"")
			}
			q, err := tsdb.ParseQuery(a.Arg)
			if err != nil {
				return afail("bad queryall query: %v", err)
			}
			// Normalize against the virtual epoch the engines start from, so a
			// query the coordinator would reject fails validation, not the run.
			if _, err := query.Normalize(q, clock.Epoch.Add(a.At)); err != nil {
				return afail("bad queryall query: %v", err)
			}
		case "disk":
			if s.Engine != EngineSockets {
				return afail("disk faults need engine = \"sockets\" (the model engine has no disk)")
			}
			if s.DataDir == "" {
				return afail("disk faults need data_dir set (nodes have no store otherwise)")
			}
			if err := checkNodeTarget(a.Node, minN); err != nil {
				return afail("%v", err)
			}
		}
	}

	if s.TraceSample < 0 {
		return fail("scenario", "trace_sample", "must be >= 0, got %d", s.TraceSample)
	}
	return nil
}

// checkNodeTarget verifies a node name exists in every sweep point (i.e. its
// index is below the smallest node count).
func checkNodeTarget(name string, minNodes int) error {
	if !strings.HasPrefix(name, "node") {
		return fmt.Errorf("unknown node %q (nodes are named node0..node%d)", name, minNodes-1)
	}
	idx, err := strconv.Atoi(name[len("node"):])
	if err != nil || idx < 0 {
		return fmt.Errorf("unknown node %q (nodes are named node0..node%d)", name, minNodes-1)
	}
	if idx >= minNodes {
		return fmt.Errorf("node %q does not exist in the smallest sweep point (%d nodes)", name, minNodes)
	}
	return nil
}

// sortSchedule orders actions by offset, preserving runfile order for ties.
// Engines rely on this ordering to fire actions at tick boundaries.
func sortSchedule(actions []Action) []Action {
	out := make([]Action, len(actions))
	copy(out, actions)
	// Insertion sort: schedules are short and stability matters.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// fmtDuration renders a duration compactly for reports.
func fmtDuration(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// Report emission. Every run produces two artifacts:
//
//   - BENCH_scenario_<name>.json — one benchjson-schema Result per sweep
//     point (name "scenario/<name>/nodes=<n>"), so the scenario numbers sit
//     next to the micro-benchmark BENCH_*.json files and feed the same
//     tooling.
//   - REPORT_scenario_<name>.md — a human-readable markdown report with a
//     per-sweep-point table of throughput, drops and propagation
//     p50/p95/p99, plus the recovery counters and the runfile echo.
//
// Neither artifact contains wall-clock input: virtual-time runs of the same
// runfile are byte-identical, which the determinism test asserts.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// jsonResult mirrors cmd/benchjson's Result schema.
type jsonResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// EncodeJSON renders the run as a benchjson-compatible JSON array. iters is
// the delivery count and ns_per_op the median propagation delay — the two
// axes the paper's scaling figures plot.
func (r *RunResult) EncodeJSON() ([]byte, error) {
	out := make([]jsonResult, 0, len(r.Points))
	for i := range r.Points {
		p := &r.Points[i]
		m := map[string]float64{
			"nodes":          float64(p.Nodes),
			"duration_s":     p.Duration.Seconds(),
			"reports":        float64(p.Reports),
			"events":         float64(p.Events),
			"deliveries":     float64(p.Deliveries),
			"drops":          float64(p.Drops),
			"skips":          float64(p.Skips),
			"processed":      float64(p.Processed),
			"bytes_sent":     float64(p.BytesSent),
			"throughput_eps": p.Throughput(),
			"publish_eps":    p.PublishRate(),
			"prop_p50_ns":    float64(p.Prop.Quantile(0.50)),
			"prop_p95_ns":    float64(p.Prop.Quantile(0.95)),
			"prop_p99_ns":    float64(p.Prop.Quantile(0.99)),
		}
		for _, rc := range p.Recovery {
			m["recovery_"+rc.Name] = float64(rc.Value)
		}
		name := fmt.Sprintf("scenario/%s/nodes=%d", r.Scenario.Name, p.Nodes)
		if p.Branching > 0 {
			// Relay-tree sweep points carry the branching factor in both the
			// name (so flat and tree runs of the same node count stay distinct
			// rows) and the metrics map (for tooling that plots by axis).
			name += fmt.Sprintf("/branching=%d", p.Branching)
			m["branching"] = float64(p.Branching)
		}
		out = append(out, jsonResult{
			Name:    name,
			Iters:   int64(p.Deliveries),
			NsPerOp: float64(p.Prop.Quantile(0.50)),
			Metrics: m,
		})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// EncodeReport renders the markdown report.
func (r *RunResult) EncodeReport() []byte {
	s := r.Scenario
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Scenario report: %s\n\n", s.Name)
	fmt.Fprintf(&sb, "Runfile `%s` — engine **%s**, clock **%s**, seed %d, %s per sweep point (tick %s).\n\n",
		s.Path, s.Engine, s.Clock, s.Seed, fmtDuration(s.Duration), fmtDuration(s.Tick))

	fmt.Fprintf(&sb, "Load: %.4g events/s per node × %d B payload", s.Load.Rate, s.Load.Payload)
	if s.Load.BurstEvery > 0 {
		fmt.Fprintf(&sb, ", bursting ×%.3g for %s every %s", s.Load.BurstFactor, fmtDuration(s.Load.BurstLen), fmtDuration(s.Load.BurstEvery))
	}
	fmt.Fprintf(&sb, "; filters: %s", s.Filters.Mode)
	switch s.Filters.Mode {
	case FilterPeriod:
		fmt.Fprintf(&sb, " (%s)", fmtDuration(s.Filters.Period))
	case FilterDiff:
		fmt.Fprintf(&sb, " (%.4g%%)", s.Filters.DiffPct)
	}
	if s.Churn.Fraction > 0 {
		fmt.Fprintf(&sb, "; churn: %.4g%% every %s, down %s", s.Churn.Fraction*100, fmtDuration(s.Churn.Interval), fmtDuration(s.Churn.Down))
	}
	sb.WriteString(".\n\n")

	// The headline table: one row per sweep point. The overlay column only
	// appears when the run sweeps branching factors.
	hasBranching := false
	for i := range r.Points {
		if r.Points[i].Branching > 0 {
			hasBranching = true
		}
	}
	overlayLabel := func(p *PointResult) string {
		if p.Branching == 0 {
			return "flat"
		}
		return fmt.Sprintf("tree-b%d", p.Branching)
	}
	sb.WriteString("## Results\n\n")
	if hasBranching {
		sb.WriteString("| nodes | overlay | published | deliveries | throughput (ev/s) | drops | skips | prop p50 | prop p95 | prop p99 |\n")
		sb.WriteString("|------:|--------:|----------:|-----------:|------------------:|------:|------:|---------:|---------:|---------:|\n")
	} else {
		sb.WriteString("| nodes | published | deliveries | throughput (ev/s) | drops | skips | prop p50 | prop p95 | prop p99 |\n")
		sb.WriteString("|------:|----------:|-----------:|------------------:|------:|------:|---------:|---------:|---------:|\n")
	}
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(&sb, "| %d ", p.Nodes)
		if hasBranching {
			fmt.Fprintf(&sb, "| %s ", overlayLabel(p))
		}
		fmt.Fprintf(&sb, "| %d | %d | %.1f | %d | %d | %s | %s | %s |\n",
			p.Reports+p.Events, p.Deliveries, p.Throughput(), p.Drops, p.Skips,
			fmtDuration(time.Duration(p.Prop.Quantile(0.50))),
			fmtDuration(time.Duration(p.Prop.Quantile(0.95))),
			fmtDuration(time.Duration(p.Prop.Quantile(0.99))))
	}
	sb.WriteString("\n")

	// Per-point detail: volume and recovery counters.
	for i := range r.Points {
		p := &r.Points[i]
		if p.Branching > 0 {
			fmt.Fprintf(&sb, "## nodes = %d, overlay = tree-b%d\n\n", p.Nodes, p.Branching)
		} else {
			fmt.Fprintf(&sb, "## nodes = %d\n\n", p.Nodes)
		}
		fmt.Fprintf(&sb, "- steps: %d (%s of %s ticks)\n", p.Steps, fmtDuration(p.Duration), fmtDuration(s.Tick))
		fmt.Fprintf(&sb, "- monitoring reports published: %d\n", p.Reports)
		fmt.Fprintf(&sb, "- workload events published: %d\n", p.Events)
		fmt.Fprintf(&sb, "- deliveries: %d (%d processed by subscribers)\n", p.Deliveries, p.Processed)
		fmt.Fprintf(&sb, "- drops (inbox overflow): %d, skips (down/partitioned targets): %d\n", p.Drops, p.Skips)
		fmt.Fprintf(&sb, "- bytes on the wire: %d\n", p.BytesSent)
		fmt.Fprintf(&sb, "- propagation samples: %d\n", p.Prop.Count)
		interesting := false
		for _, rc := range p.Recovery {
			if rc.Value > 0 {
				interesting = true
				break
			}
		}
		if interesting {
			sb.WriteString("- recovery counters:")
			for _, rc := range p.Recovery {
				if rc.Value > 0 {
					fmt.Fprintf(&sb, " %s=%d", rc.Name, rc.Value)
				}
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	return []byte(sb.String())
}

// WriteArtifacts writes both artifacts to the scenario's output paths,
// creating the output directory if needed, and returns the paths written.
func (r *RunResult) WriteArtifacts() (jsonPath, reportPath string, err error) {
	s := r.Scenario
	jsonPath, reportPath = s.JSONPath(), s.ReportPath()
	if dir := filepath.Dir(jsonPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", "", fmt.Errorf("scenario: output dir: %w", err)
		}
	}
	if dir := filepath.Dir(reportPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", "", fmt.Errorf("scenario: output dir: %w", err)
		}
	}
	buf, err := r.EncodeJSON()
	if err != nil {
		return "", "", err
	}
	if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
		return "", "", err
	}
	if err := os.WriteFile(reportPath, r.EncodeReport(), 0o644); err != nil {
		return "", "", err
	}
	return jsonPath, reportPath, nil
}

package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExampleRunfilesValidate keeps the shipped runfiles honest: every file
// under examples/scenarios must parse and validate.
func TestExampleRunfilesValidate(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("examples/scenarios missing: %v", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".toml") {
			continue
		}
		n++
		if _, err := LoadFile(filepath.Join(dir, e.Name())); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if n < 4 {
		t.Fatalf("only %d example runfiles found, want the shipped four plus smoke", n)
	}
}

// churnSoak is a scaled-down copy of examples/scenarios/churn-soak.toml:
// same shape, shorter run, so the determinism test stays fast.
const churnSoak = `
[scenario]
name     = "churn-soak-test"
seed     = 7
engine   = "model"
duration = "30s"

[topology]
nodes = 16

[load]
rate    = 2.0
payload = 128

[filters]
mode     = "diff"
diff_pct = 15

[subscribers]
rate  = 500
inbox = 64

[churn]
interval = "5s"
fraction = 0.2
down     = "7s"
`

// TestModelDeterminism is the reproducibility guarantee: the churn-soak
// scenario run twice from the same seed yields identical event counts and
// identical histogram snapshots — and therefore byte-identical artifacts.
func TestModelDeterminism(t *testing.T) {
	run := func() *RunResult {
		s, err := Parse(churnSoak, "churn-soak-test.toml")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		res, err := Run(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	pa, pb := a.Points[0], b.Points[0]
	if pa.Reports != pb.Reports || pa.Events != pb.Events || pa.Deliveries != pb.Deliveries ||
		pa.Drops != pb.Drops || pa.Skips != pb.Skips || pa.BytesSent != pb.BytesSent {
		t.Fatalf("counters differ:\n%+v\n%+v", pa, pb)
	}
	if pa.Prop != pb.Prop {
		t.Fatal("histogram snapshots differ between identical runs")
	}
	ja, err := a.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("JSON artifacts differ between identical runs")
	}
	if !bytes.Equal(a.EncodeReport(), b.EncodeReport()) {
		t.Fatal("markdown reports differ between identical runs")
	}
	// Sanity: the run actually did something.
	if pa.Deliveries == 0 || pa.Reports == 0 {
		t.Fatalf("empty run: %+v", pa)
	}
	for _, rc := range pa.Recovery {
		if rc.Name == "churn_leaves" && rc.Value == 0 {
			t.Fatal("churn never fired")
		}
	}
}

// TestModelSeedChangesRun guards against the opposite failure: a harness
// that ignores its seed would pass the determinism test trivially.
func TestModelSeedChangesRun(t *testing.T) {
	run := func(seed int64) PointResult {
		s, err := Parse(churnSoak, "churn-soak-test.toml")
		if err != nil {
			t.Fatal(err)
		}
		s.Seed = seed
		res, err := Run(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Points[0]
	}
	if a, b := run(7), run(8); a.Deliveries == b.Deliveries && a.Prop == b.Prop {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestModelScalingShape asserts the property the scaling sweep exists to
// measure: tail propagation delay grows with fan-out size.
func TestModelScalingShape(t *testing.T) {
	s := Defaults()
	s.Name = "shape"
	s.Path = "shape.toml"
	s.Duration = 5 * time.Second
	s.Topology.Nodes = []int{4, 64}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(&s, nil)
	if err != nil {
		t.Fatal(err)
	}
	small, large := res.Points[0], res.Points[1]
	if small.Deliveries == 0 || large.Deliveries == 0 {
		t.Fatalf("empty sweep points: %d / %d", small.Deliveries, large.Deliveries)
	}
	if large.Prop.Quantile(0.99) <= small.Prop.Quantile(0.99) {
		t.Fatalf("p99 did not grow with cluster size: %d nodes → %v, %d nodes → %v",
			small.Nodes, time.Duration(small.Prop.Quantile(0.99)),
			large.Nodes, time.Duration(large.Prop.Quantile(0.99)))
	}
}

// TestModelSlowSubscribersDrop asserts the fluid inbox model: subscribers
// draining slower than the offered load must overflow and drop.
func TestModelSlowSubscribersDrop(t *testing.T) {
	s := Defaults()
	s.Name = "herd"
	s.Path = "herd.toml"
	s.Duration = 20 * time.Second
	s.Topology.Nodes = []int{32}
	s.Load.Rate = 4
	s.Subscribers.Inbox = 32
	s.Subscribers.SlowFraction = 0.5
	s.Subscribers.SlowRate = 1
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(&s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Drops == 0 {
		t.Fatalf("no drops despite a slow herd: %+v", res.Points[0])
	}
}

// TestModelScheduleVerbs runs kill/revive and partition/heal and checks
// they bite: a killed publisher stops publishing, a partition skips
// cross-group deliveries.
func TestModelScheduleVerbs(t *testing.T) {
	s := Defaults()
	s.Name = "verbs"
	s.Path = "verbs.toml"
	s.Duration = 10 * time.Second
	s.Topology.Nodes = []int{4}
	s.Schedule = []Action{
		{At: 2 * time.Second, Verb: "kill", Node: "node1", Line: 1},
		{At: 6 * time.Second, Verb: "revive", Node: "node1", Line: 2},
		{At: 3 * time.Second, Verb: "partition", Value: 2, Line: 3},
		{At: 8 * time.Second, Verb: "heal", Line: 4},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(&s, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Skips == 0 {
		t.Fatalf("partition/kill produced no skips: %+v", pt)
	}
	rc := map[string]uint64{}
	for _, c := range pt.Recovery {
		rc[c.Name] = c.Value
	}
	if rc["kills"] != 1 || rc["revives"] != 1 || rc["partitions"] != 1 || rc["heals"] != 1 {
		t.Fatalf("recovery counters: %v", rc)
	}
}

// TestWriteArtifacts round-trips the artifact paths.
func TestWriteArtifacts(t *testing.T) {
	s := Defaults()
	s.Name = "artifacts"
	s.Path = "artifacts.toml"
	s.Duration = 2 * time.Second
	s.Topology.Nodes = []int{2}
	s.Output.Dir = t.TempDir()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(&s, nil)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath, reportPath, err := res.WriteArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jsonPath, reportPath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	if !strings.HasSuffix(jsonPath, "BENCH_scenario_artifacts.json") {
		t.Fatalf("jsonPath = %q", jsonPath)
	}
	if !strings.HasSuffix(reportPath, "REPORT_scenario_artifacts.md") {
		t.Fatalf("reportPath = %q", reportPath)
	}
}

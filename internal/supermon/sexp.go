// Package supermon implements the baseline dproc is compared against in the
// paper's related work: Supermon's centralized cluster monitoring. Each node
// runs a small status server (the kernel-patch/sysctl analogue) answering
// pull requests with its current metrics encoded as symbolic expressions —
// Supermon's wire format, chosen there for heterogeneity — and a single
// central data concentrator polls every node and merges the results. The
// package exists so the architectural contrast (central pull vs. dproc's
// peer-to-peer push) can be measured, not just asserted: see
// BenchmarkBaselineSupermonVsDproc.
package supermon

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Sexp is a symbolic expression: an atom (symbol or number) or a list.
type Sexp struct {
	// Atom holds the token text when the node is an atom (List is nil).
	Atom string
	// List holds child expressions when the node is a list.
	List []*Sexp
	// isList distinguishes the empty list () from the empty atom.
	isList bool
}

// Sym builds a symbol atom.
func Sym(s string) *Sexp { return &Sexp{Atom: s} }

// Num builds a numeric atom.
func Num(v float64) *Sexp { return &Sexp{Atom: strconv.FormatFloat(v, 'g', -1, 64)} }

// ListOf builds a list node.
func ListOf(children ...*Sexp) *Sexp { return &Sexp{List: children, isList: true} }

// IsList reports whether the node is a list.
func (s *Sexp) IsList() bool { return s.isList }

// Float parses the atom as a number.
func (s *Sexp) Float() (float64, error) {
	if s.isList {
		return 0, fmt.Errorf("supermon: list is not a number")
	}
	return strconv.ParseFloat(s.Atom, 64)
}

// Nth returns the i-th child of a list (nil if out of range or not a list).
func (s *Sexp) Nth(i int) *Sexp {
	if !s.isList || i < 0 || i >= len(s.List) {
		return nil
	}
	return s.List[i]
}

// String renders the expression in canonical form.
func (s *Sexp) String() string {
	if !s.isList {
		return s.Atom
	}
	parts := make([]string, len(s.List))
	for i, c := range s.List {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// ParseSexp parses one expression from the input, returning it and any
// trailing text.
func ParseSexp(input string) (*Sexp, string, error) {
	rest := strings.TrimLeftFunc(input, unicode.IsSpace)
	if rest == "" {
		return nil, "", fmt.Errorf("supermon: empty input")
	}
	if rest[0] == '(' {
		rest = rest[1:]
		node := &Sexp{isList: true}
		for {
			rest = strings.TrimLeftFunc(rest, unicode.IsSpace)
			if rest == "" {
				return nil, "", fmt.Errorf("supermon: unterminated list")
			}
			if rest[0] == ')' {
				return node, rest[1:], nil
			}
			child, r, err := ParseSexp(rest)
			if err != nil {
				return nil, "", err
			}
			node.List = append(node.List, child)
			rest = r
		}
	}
	if rest[0] == ')' {
		return nil, "", fmt.Errorf("supermon: unexpected ')'")
	}
	end := strings.IndexFunc(rest, func(r rune) bool {
		return unicode.IsSpace(r) || r == '(' || r == ')'
	})
	if end < 0 {
		end = len(rest)
	}
	return &Sexp{Atom: rest[:end]}, rest[end:], nil
}

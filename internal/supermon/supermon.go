package supermon

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dproc/internal/dmon"
	"dproc/internal/metrics"
)

// NodeServer is the per-node half of the Supermon architecture: it answers
// "poll" requests with the node's current metrics as one s-expression —
// the rstat/sysctl export of the original. Protocol: the client sends a
// line ("poll\n"), the server replies with one line holding the expression.
type NodeServer struct {
	name string
	src  dmon.Source
	ln   net.Listener
	wg   sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	polls  uint64
}

// NewNodeServer starts a status server for the named node backed by src.
func NewNodeServer(name string, src dmon.Source, addr string) (*NodeServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("supermon: listen: %w", err)
	}
	s := &NodeServer{name: name, src: src, ln: ln, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's address.
func (s *NodeServer) Addr() string { return s.ln.Addr().String() }

// Polls reports how many poll requests the node has served.
func (s *NodeServer) Polls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.polls
}

// Close stops the server.
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *NodeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serve(conn)
		}()
	}
}

func (s *NodeServer) serve(conn net.Conn) {
	r := bufio.NewReader(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		if line != "poll\n" {
			fmt.Fprintf(conn, "(error unknown-request)\n")
			continue
		}
		s.mu.Lock()
		s.polls++
		s.mu.Unlock()
		if _, err := fmt.Fprintln(conn, s.Snapshot().String()); err != nil {
			return
		}
	}
}

// Snapshot encodes the node's current metrics:
// (mon <name> (loadavg 1.5) (freemem 4.2e8) ...).
func (s *NodeServer) Snapshot() *Sexp {
	out := ListOf(Sym("mon"), Sym(s.name))
	for _, id := range metrics.AllIDs() {
		out.List = append(out.List, ListOf(Sym(id.String()), Num(s.src.Sample(id))))
	}
	return out
}

// DecodeSnapshot parses a node expression back into metric values.
func DecodeSnapshot(sx *Sexp) (node string, values map[metrics.ID]float64, err error) {
	if !sx.IsList() || len(sx.List) < 2 || sx.Nth(0).Atom != "mon" {
		return "", nil, fmt.Errorf("supermon: not a mon expression: %s", sx)
	}
	node = sx.Nth(1).Atom
	values = make(map[metrics.ID]float64, len(sx.List)-2)
	for _, entry := range sx.List[2:] {
		if !entry.IsList() || len(entry.List) != 2 {
			return "", nil, fmt.Errorf("supermon: malformed metric entry %s", entry)
		}
		id, ok := metrics.ParseID(entry.Nth(0).Atom)
		if !ok {
			continue // unknown metric from a newer node: skip, don't fail
		}
		v, err := entry.Nth(1).Float()
		if err != nil {
			return "", nil, fmt.Errorf("supermon: metric %s: %w", entry.Nth(0).Atom, err)
		}
		values[id] = v
	}
	return node, values, nil
}

// Collector is the central data concentrator: it polls every registered
// node serially over persistent connections and merges the replies — the
// design whose scalability the paper questions ("Scalability can be a
// problem in Supermon because of the centralized data concentrator").
type Collector struct {
	mu    sync.Mutex
	nodes []string // addresses
	conns map[string]*collectorConn
}

type collectorConn struct {
	conn net.Conn
	r    *bufio.Reader
}

// NewCollector returns a collector polling the given node addresses.
func NewCollector(addrs ...string) *Collector {
	sorted := append([]string(nil), addrs...)
	sort.Strings(sorted)
	return &Collector{nodes: sorted, conns: map[string]*collectorConn{}}
}

// Close releases all connections.
func (c *Collector) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	c.conns = map[string]*collectorConn{}
}

func (c *Collector) conn(addr string) (*collectorConn, error) {
	if cc, ok := c.conns[addr]; ok {
		return cc, nil
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	cc := &collectorConn{conn: conn, r: bufio.NewReader(conn)}
	c.conns[addr] = cc
	return cc, nil
}

// Cluster is one merged collection round: node name → metric values.
type Cluster map[string]map[metrics.ID]float64

// CollectOnce polls every node once and merges the snapshots. Nodes that
// fail to answer are skipped (and their cached connection dropped); err
// reports the last failure.
func (c *Collector) CollectOnce() (Cluster, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Cluster{}
	var lastErr error
	for _, addr := range c.nodes {
		cc, err := c.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if _, err := fmt.Fprintln(cc.conn, "poll"); err != nil {
			cc.conn.Close()
			delete(c.conns, addr)
			lastErr = err
			continue
		}
		line, err := cc.r.ReadString('\n')
		if err != nil {
			cc.conn.Close()
			delete(c.conns, addr)
			lastErr = err
			continue
		}
		sx, _, err := ParseSexp(line)
		if err != nil {
			lastErr = err
			continue
		}
		node, values, err := DecodeSnapshot(sx)
		if err != nil {
			lastErr = err
			continue
		}
		out[node] = values
	}
	return out, lastErr
}

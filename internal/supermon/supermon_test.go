package supermon

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"dproc/internal/clock"
	"dproc/internal/metrics"
	"dproc/internal/simres"
)

func TestSexpRender(t *testing.T) {
	sx := ListOf(Sym("mon"), Sym("alan"), ListOf(Sym("loadavg"), Num(1.5)))
	if got := sx.String(); got != "(mon alan (loadavg 1.5))" {
		t.Fatalf("String = %q", got)
	}
	if ListOf().String() != "()" {
		t.Fatal("empty list render")
	}
	if Sym("x").String() != "x" {
		t.Fatal("atom render")
	}
}

func TestSexpParse(t *testing.T) {
	sx, rest, err := ParseSexp("(mon alan (loadavg 1.5) (freemem 4.2e+08)) trailing")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(rest) != "trailing" {
		t.Fatalf("rest = %q", rest)
	}
	if !sx.IsList() || len(sx.List) != 4 {
		t.Fatalf("parsed = %s", sx)
	}
	if sx.Nth(0).Atom != "mon" || sx.Nth(1).Atom != "alan" {
		t.Fatalf("parsed = %s", sx)
	}
	v, err := sx.Nth(2).Nth(1).Float()
	if err != nil || v != 1.5 {
		t.Fatalf("loadavg = (%g, %v)", v, err)
	}
}

func TestSexpParseErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "(unclosed", ")", "(a (b)", "(a ))extra"} {
		if _, _, err := ParseSexp(bad); err != nil {
			continue
		}
		// "(a ))extra" parses "(a )" leaving ")extra" — that's legal; only
		// genuinely broken inputs must fail.
		if bad != "(a ))extra" {
			t.Errorf("ParseSexp(%q) succeeded", bad)
		}
	}
}

func TestSexpNthOutOfRange(t *testing.T) {
	sx := ListOf(Sym("a"))
	if sx.Nth(5) != nil || sx.Nth(-1) != nil {
		t.Fatal("Nth out of range not nil")
	}
	if Sym("a").Nth(0) != nil {
		t.Fatal("Nth on atom not nil")
	}
	if _, err := ListOf().Float(); err == nil {
		t.Fatal("Float on list succeeded")
	}
}

// Property: rendered expressions parse back identically.
func TestQuickSexpRoundTrip(t *testing.T) {
	// Build random trees from a seed int slice.
	var build func(vals []float64, depth int) *Sexp
	build = func(vals []float64, depth int) *Sexp {
		if depth <= 0 || len(vals) == 0 {
			return Num(123)
		}
		node := ListOf(Sym("n"))
		for i, v := range vals {
			if i > 4 {
				break
			}
			if int(v)%2 == 0 {
				node.List = append(node.List, Num(v))
			} else {
				node.List = append(node.List, build(vals[i+1:], depth-1))
			}
		}
		return node
	}
	f := func(vals []float64) bool {
		for i, v := range vals { // sanitize NaN/Inf which don't round-trip as atoms
			if v != v || v > 1e300 || v < -1e300 {
				vals[i] = 1
			}
		}
		sx := build(vals, 3)
		parsed, rest, err := ParseSexp(sx.String())
		if err != nil || strings.TrimSpace(rest) != "" {
			return false
		}
		return parsed.String() == sx.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newNode(t *testing.T, name string, load float64) *NodeServer {
	t.Helper()
	clk := clock.NewVirtual(clock.Epoch)
	host := simres.NewHost(name, clk, 1)
	host.SetNoise(0)
	if load > 0 {
		host.AddTask(load)
	}
	srv, err := NewNodeServer(name, host, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestSnapshotEncodesAllMetrics(t *testing.T) {
	srv := newNode(t, "alan", 2)
	sx := srv.Snapshot()
	node, values, err := DecodeSnapshot(sx)
	if err != nil {
		t.Fatal(err)
	}
	if node != "alan" {
		t.Fatalf("node = %q", node)
	}
	if len(values) != int(metrics.NumIDs) {
		t.Fatalf("values = %d, want %d", len(values), metrics.NumIDs)
	}
	if values[metrics.LOADAVG] != 2 {
		t.Fatalf("loadavg = %g", values[metrics.LOADAVG])
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	if _, _, err := DecodeSnapshot(Sym("x")); err == nil {
		t.Fatal("atom accepted")
	}
	bad, _, _ := ParseSexp("(mon alan (loadavg notanumber))")
	if _, _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	malformed, _, _ := ParseSexp("(mon alan (loadavg))")
	if _, _, err := DecodeSnapshot(malformed); err == nil {
		t.Fatal("malformed entry accepted")
	}
	// Unknown metrics are skipped, not fatal (heterogeneity).
	unknown, _, _ := ParseSexp("(mon alan (futurething 9) (loadavg 1))")
	_, values, err := DecodeSnapshot(unknown)
	if err != nil || values[metrics.LOADAVG] != 1 || len(values) != 1 {
		t.Fatalf("values=%v err=%v", values, err)
	}
}

func TestCollectorMergesCluster(t *testing.T) {
	a := newNode(t, "alan", 1)
	b := newNode(t, "maui", 3)
	c := newNode(t, "etna", 0)
	col := NewCollector(a.Addr(), b.Addr(), c.Addr())
	defer col.Close()
	cluster, err := col.CollectOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster) != 3 {
		t.Fatalf("cluster = %v", cluster)
	}
	if cluster["alan"][metrics.LOADAVG] != 1 || cluster["maui"][metrics.LOADAVG] != 3 ||
		cluster["etna"][metrics.LOADAVG] != 0 {
		t.Fatalf("loads = %v", cluster)
	}
	// Each node served exactly one poll.
	for _, srv := range []*NodeServer{a, b, c} {
		if srv.Polls() != 1 {
			t.Fatalf("polls = %d", srv.Polls())
		}
	}
	// Second round reuses connections.
	if _, err := col.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	if a.Polls() != 2 {
		t.Fatalf("polls after round 2 = %d", a.Polls())
	}
}

func TestCollectorSkipsDeadNode(t *testing.T) {
	a := newNode(t, "alan", 1)
	dead := newNode(t, "ghost", 0)
	addr := dead.Addr()
	dead.Close()
	col := NewCollector(a.Addr(), addr)
	defer col.Close()
	cluster, err := col.CollectOnce()
	if err == nil {
		t.Fatal("dead node produced no error")
	}
	if len(cluster) != 1 || cluster["alan"] == nil {
		t.Fatalf("cluster = %v", cluster)
	}
}

func TestNodeServerUnknownRequest(t *testing.T) {
	srv := newNode(t, "alan", 0)
	col := NewCollector(srv.Addr())
	defer col.Close()
	// Direct protocol poke via the collector's connection logic is awkward;
	// use a raw round trip instead.
	cc, err := col.conn(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(cc.conn, "dance")
	line, err := cc.r.ReadString('\n')
	if err != nil || !strings.Contains(line, "error") {
		t.Fatalf("reply = (%q, %v)", line, err)
	}
}

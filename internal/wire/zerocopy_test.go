package wire

import (
	"bytes"
	"io"
	"net"
	"testing"
)

// frames builds a stream of frames in one buffer.
func frames(t *testing.T, payloads ...[]byte) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	for i, p := range payloads {
		if err := WriteFrame(&buf, uint8(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

// TestFrameReaderReusesBuffer pins the FrameReader ownership contract: the
// payload from Next aliases the reader's buffer, so the next equal-size
// frame overwrites it. A consumer that held the slice across Next calls
// observes the new frame's bytes — the violation is caught.
func TestFrameReaderReusesBuffer(t *testing.T) {
	stream := frames(t, []byte("frame-one"), []byte("frame-two"))
	fr := NewFrameReader(stream)

	_, p1, err := fr.Next()
	if err != nil || string(p1) != "frame-one" {
		t.Fatalf("first Next = %q, %v", p1, err)
	}
	retained := p1 // contract violation: kept across Next

	_, p2, err := fr.Next()
	if err != nil || string(p2) != "frame-two" {
		t.Fatalf("second Next = %q, %v", p2, err)
	}
	if string(retained) != "frame-two" {
		t.Fatalf("retained slice reads %q; the receive buffer was not reused", retained)
	}
}

// TestFrameReaderGrowsForLargeFrames pins correctness when frames exceed the
// current buffer: the reader adopts the grown buffer and keeps serving.
func TestFrameReaderGrowsForLargeFrames(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 64<<10)
	stream := frames(t, []byte("small"), big, []byte("again"))
	fr := NewFrameReader(stream)
	for i, want := range [][]byte{[]byte("small"), big, []byte("again")} {
		_, p, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(p, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(p), len(want))
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after stream end: %v", err)
	}
}

// TestReadFrameIntoReusesCapacity pins that a sufficiently large caller
// buffer is reused rather than reallocated.
func TestReadFrameIntoReusesCapacity(t *testing.T) {
	stream := frames(t, []byte("hello"))
	buf := make([]byte, 0, 32)
	_, payload, err := ReadFrameInto(stream, buf)
	if err != nil || string(payload) != "hello" {
		t.Fatalf("ReadFrameInto = %q, %v", payload, err)
	}
	if &payload[0] != &buf[:1][0] {
		t.Fatal("payload does not alias the caller's buffer")
	}
}

// TestDecodeBatchIntoViewsAliasBuffer pins the zero-copy batch contract:
// decoded events are subslices of the batch buffer, not copies.
func TestDecodeBatchIntoViewsAliasBuffer(t *testing.T) {
	batch := EncodeBatch([][]byte{[]byte("aaaa"), []byte("bbbb")})
	events, err := DecodeBatchInto(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || string(events[0]) != "aaaa" || string(events[1]) != "bbbb" {
		t.Fatalf("events = %q", events)
	}
	// Mutate the underlying buffer; the views must change with it.
	for i := range batch {
		batch[i] = 'Z'
	}
	if string(events[0]) != "ZZZZ" || string(events[1]) != "ZZZZ" {
		t.Fatalf("views did not alias the buffer: %q", events)
	}
}

// TestDecodeBatchIntoReusesDst pins scratch reuse: a recycled dst slice is
// appended into, not reallocated, when capacity suffices.
func TestDecodeBatchIntoReusesDst(t *testing.T) {
	batch := EncodeBatch([][]byte{[]byte("one"), []byte("two"), []byte("three")})
	scratch := make([][]byte, 0, 8)
	events, err := DecodeBatchInto(scratch[:0], batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || cap(events) != 8 {
		t.Fatalf("len=%d cap=%d, want len 3 in the caller's cap-8 scratch", len(events), cap(events))
	}
}

// TestWriteFrameVectoredMatchesFallback pins that the writev fast path on a
// real TCP connection produces byte-identical frames to the generic path.
func TestWriteFrameVectoredMatchesFallback(t *testing.T) {
	payload := bytes.Repeat([]byte("payload"), 100)

	var generic bytes.Buffer
	if err := WriteFrame(&generic, 7, payload); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		all, _ := io.ReadAll(conn)
		done <- all
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, 7, payload); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	got := <-done
	if !bytes.Equal(got, generic.Bytes()) {
		t.Fatalf("vectored TCP write produced %d bytes, generic %d; frames differ", len(got), generic.Len())
	}
}

// rewindReader serves the same byte stream repeatedly without allocating,
// so allocation tests can drive the receive path in steady state.
type rewindReader struct {
	data []byte
	off  int
}

func (r *rewindReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestSteadyStateReceivePathIsAllocationFree pins the tentpole acceptance
// criterion at the wire layer: reading a frame, unpacking its batch and
// decoding every record allocates nothing once the buffers are warm.
func TestSteadyStateReceivePathIsAllocationFree(t *testing.T) {
	// One batch frame holding three event-shaped records.
	var records [][]byte
	for _, s := range []string{"rec-a", "rec-bb", "rec-ccc"} {
		e := NewEncoder(32)
		e.String("node-1")
		e.Uint64(42)
		e.BytesField([]byte(s))
		records = append(records, e.Bytes())
	}
	var stream bytes.Buffer
	if err := WriteFrame(&stream, 3, EncodeBatch(records)); err != nil {
		t.Fatal(err)
	}

	src := &rewindReader{data: stream.Bytes()}
	fr := NewFrameReader(src)
	var batch [][]byte
	sink := 0
	receive := func() {
		src.off = 0
		_, payload, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		var derr error
		batch, derr = DecodeBatchInto(batch[:0], payload)
		if derr != nil {
			t.Fatal(derr)
		}
		for _, rec := range batch {
			d := NewDecoder(rec)
			from := d.StringBytes()
			seq := d.Uint64()
			body := d.BytesFieldView()
			if d.Finish() != nil || len(from) == 0 || seq != 42 {
				t.Fatal("decode failed")
			}
			sink += len(body)
		}
	}
	receive() // warm the reader buffer and batch scratch
	if avg := testing.AllocsPerRun(200, receive); avg != 0 {
		t.Fatalf("steady-state receive path allocates %.1f times per frame, want 0", avg)
	}
	_ = sink
}

package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// feedParser pushes data through p in chunks of at most chunk bytes and
// returns every completed frame (type, copied payload).
func feedParser(t *testing.T, p *Parser, data []byte, chunk int) (types []uint8, payloads [][]byte) {
	t.Helper()
	for off := 0; off < len(data); {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		buf := data[off:end]
		for len(buf) > 0 {
			n, typ, payload, ok, err := p.Next(buf)
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			buf = buf[n:]
			off += n
			if ok {
				types = append(types, typ)
				payloads = append(payloads, append([]byte(nil), payload...))
			}
		}
	}
	return types, payloads
}

// TestParserMatchesReadFrame feeds a stream of frames through the
// incremental parser at every pathological chunking — byte-by-byte, prime
// sizes, whole-stream — and requires the exact frame sequence a blocking
// ReadFrame loop would produce.
func TestParserMatchesReadFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var stream bytes.Buffer
	var wantTypes []uint8
	var wantPayloads [][]byte
	for i := 0; i < 20; i++ {
		typ := uint8(1 + rng.Intn(3))
		payload := make([]byte, rng.Intn(300)) // includes 0-length payloads
		rng.Read(payload)
		if err := WriteFrame(&stream, typ, payload); err != nil {
			t.Fatal(err)
		}
		wantTypes = append(wantTypes, typ)
		wantPayloads = append(wantPayloads, payload)
	}
	for _, chunk := range []int{1, 2, 3, 7, 13, 64, stream.Len()} {
		var p Parser
		types, payloads := feedParser(t, &p, stream.Bytes(), chunk)
		if len(types) != len(wantTypes) {
			t.Fatalf("chunk %d: got %d frames, want %d", chunk, len(types), len(wantTypes))
		}
		for i := range types {
			if types[i] != wantTypes[i] || !bytes.Equal(payloads[i], wantPayloads[i]) {
				t.Fatalf("chunk %d: frame %d mismatch", chunk, i)
			}
		}
	}
}

// TestParserZeroCopyFastPath pins the no-copy contract: a frame that lands
// whole inside one chunk is returned as a view into the caller's buffer.
func TestParserZeroCopyFastPath(t *testing.T) {
	var stream bytes.Buffer
	payload := []byte("view me")
	if err := WriteFrame(&stream, 2, payload); err != nil {
		t.Fatal(err)
	}
	var p Parser
	data := stream.Bytes()
	n, _, got, ok, err := p.Next(data)
	if err != nil || !ok || n != len(data) {
		t.Fatalf("Next = (%d, ok=%v, err=%v)", n, ok, err)
	}
	if &got[0] != &data[HeaderSize] {
		t.Fatal("complete-in-one-chunk payload was copied, want a view into the input")
	}
}

func TestParserRejectsBadFrames(t *testing.T) {
	good := func() []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, 2, []byte("x")); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"version", func(b []byte) []byte { b[2] = Version + 1; return b }},
		{"oversize", func(b []byte) []byte {
			b[4], b[5], b[6], b[7] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p Parser
			_, _, _, _, err := p.Next(tc.mangle(good()))
			if err == nil {
				t.Fatal("mangled header accepted")
			}
		})
	}
}

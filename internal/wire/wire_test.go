package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	ts := time.Date(2003, 6, 23, 12, 0, 0, 12345, time.UTC)
	e.Uint8(7)
	e.Bool(true)
	e.Bool(false)
	e.Uint16(65535)
	e.Uint32(1 << 30)
	e.Uint64(1 << 60)
	e.Int64(-42)
	e.Float64(3.14159)
	e.Time(ts)
	e.String("loadavg")
	e.BytesField([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.Uint8(); got != 7 {
		t.Errorf("Uint8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Uint16(); got != 65535 {
		t.Errorf("Uint16 = %d", got)
	}
	if got := d.Uint32(); got != 1<<30 {
		t.Errorf("Uint32 = %d", got)
	}
	if got := d.Uint64(); got != 1<<60 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := d.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.Time(); !got.Equal(ts) {
		t.Errorf("Time = %v, want %v", got, ts)
	}
	if got := d.String(); got != "loadavg" {
		t.Errorf("String = %q", got)
	}
	if got := d.BytesField(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("BytesField = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.Uint32() // needs 4 bytes, only 2 available
	if !errors.Is(d.Err(), ErrShortField) {
		t.Fatalf("Err = %v, want ErrShortField", d.Err())
	}
	// Every later read must return zero values, not panic.
	if d.Uint64() != 0 || d.String() != "" || d.BytesField() != nil {
		t.Fatal("reads after error returned non-zero values")
	}
	if !d.Time().IsZero() {
		t.Fatal("Time after error not zero")
	}
	if err := d.Finish(); !errors.Is(err, ErrShortField) {
		t.Fatalf("Finish = %v, want ErrShortField", err)
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(1)
	e.Uint32(2)
	d := NewDecoder(e.Bytes())
	_ = d.Uint32()
	if err := d.Finish(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Finish = %v, want ErrTrailing", err)
	}
}

func TestDecoderRemaining(t *testing.T) {
	d := NewDecoder(make([]byte, 10))
	if d.Remaining() != 10 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
	d.Uint16()
	if d.Remaining() != 8 {
		t.Fatalf("Remaining after Uint16 = %d", d.Remaining())
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.Uint64(99)
	if e.Len() != 8 {
		t.Fatalf("Len = %d", e.Len())
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
}

func TestBytesFieldIsCopy(t *testing.T) {
	e := NewEncoder(16)
	e.BytesField([]byte{9, 9, 9})
	buf := e.Bytes()
	d := NewDecoder(buf)
	out := d.BytesField()
	buf[4] = 0 // mutate backing buffer; decoded copy must be unaffected
	if out[0] != 9 {
		t.Fatal("BytesField aliases the decoder buffer")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("monitoring event")
	if err := WriteFrame(&buf, 3, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != 3 {
		t.Errorf("type = %d, want 3", typ)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q", got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, nil); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != 1 || len(payload) != 0 {
		t.Fatalf("ReadFrame = (%d, %v, %v)", typ, payload, err)
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteFrame(&buf, uint8(i), []byte{byte(i)}); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		typ, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if typ != uint8(i) || payload[0] != byte(i) {
			t.Fatalf("frame %d: type=%d payload=%v", i, typ, payload)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame, err = %v, want EOF", err)
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	raw := []byte{0xDE, 0xAD, 1, 0, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadFrameOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4], raw[5], raw[6], raw[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}

func TestWriteFrameOversizedPayload(t *testing.T) {
	big := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(io.Discard, 0, big); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-2]
	_, _, err := ReadFrame(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "short frame payload") {
		t.Fatalf("err = %v, want short payload error", err)
	}
}

// Property: any (string, bytes, uint64, float64) tuple survives a round trip.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(s string, b []byte, u uint64, fl float64, i int64) bool {
		e := NewEncoder(0)
		e.String(s)
		e.BytesField(b)
		e.Uint64(u)
		e.Float64(fl)
		e.Int64(i)
		d := NewDecoder(e.Bytes())
		gs := d.String()
		gb := d.BytesField()
		gu := d.Uint64()
		gf := d.Float64()
		gi := d.Int64()
		if d.Finish() != nil {
			return false
		}
		floatOK := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gs == s && bytes.Equal(gb, b) && gu == u && floatOK && gi == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: frames survive a round trip for arbitrary payloads and types.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(typ uint8, payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			return false
		}
		gt, gp, err := ReadFrame(&buf)
		return err == nil && gt == typ && bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a decoder never panics on arbitrary garbage input.
func TestQuickDecoderNoPanic(t *testing.T) {
	f := func(raw []byte) bool {
		d := NewDecoder(raw)
		_ = d.String()
		_ = d.BytesField()
		_ = d.Uint64()
		_ = d.Float64()
		_ = d.Time()
		_ = d.Finish()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},               // empty batch
		{[]byte("solo")}, // single event
		{nil},            // single empty event
		{[]byte("a"), []byte(""), []byte("ccc"), {0xDC, 0x03}}, // mixed
	}
	for _, events := range cases {
		buf := EncodeBatch(events)
		got, err := DecodeBatch(buf)
		if err != nil {
			t.Fatalf("DecodeBatch(%d events): %v", len(events), err)
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, want %d", len(got), len(events))
		}
		for i := range events {
			if !bytes.Equal(got[i], events[i]) {
				t.Fatalf("event %d = %q, want %q", i, got[i], events[i])
			}
		}
	}
}

// A decoded batch event must stay valid independently of the batch buffer.
func TestBatchEventsAreCopies(t *testing.T) {
	buf := EncodeBatch([][]byte{[]byte("keep")})
	got, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	if string(got[0]) != "keep" {
		t.Fatalf("event aliased the batch buffer: %q", got[0])
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	cases := map[string][]byte{
		"truncated count":   {0, 0, 1},
		"count over buffer": {0xFF, 0xFF, 0xFF, 0xFF},
		"short event":       EncodeBatch([][]byte{[]byte("abcd")})[:8],
		"trailing bytes":    append(EncodeBatch([][]byte{[]byte("x")}), 0x01),
	}
	for name, buf := range cases {
		if _, err := DecodeBatch(buf); err == nil {
			t.Errorf("%s: DecodeBatch succeeded on %v", name, buf)
		}
	}
}

// Property: DecodeBatch never panics on arbitrary garbage input.
func TestQuickDecodeBatchNoPanic(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = DecodeBatch(raw)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

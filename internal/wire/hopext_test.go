package wire

import "testing"

// record builds a plausible event record (string from, u64 seq, bytes body)
// so the extension matrix runs against realistic preceding fields.
func hopRecord() []byte {
	buf := AppendString(nil, "node7")
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 42)
	return AppendBytesField(buf, []byte("payload"))
}

func decodeHopBody(t *testing.T, buf []byte) *Decoder {
	t.Helper()
	d := NewDecoder(buf)
	if from := d.StringBytes(); string(from) != "node7" {
		t.Fatalf("from = %q", from)
	}
	d.Uint64()
	if body := d.BytesFieldView(); string(body) != "payload" {
		t.Fatalf("body = %q", body)
	}
	return d
}

// TestHopExtMatrix walks the four legal trailer layouts — nothing, hop
// only, trace only, hop+trace — asserting each extension is consumed
// exactly when present and Finish accepts the result.
func TestHopExtMatrix(t *testing.T) {
	base := hopRecord()
	cases := []struct {
		name      string
		buf       []byte
		wantHops  uint8
		wantHopOK bool
		wantTID   uint64
		wantTrcOK bool
	}{
		{name: "plain", buf: base},
		{name: "hop-only", buf: AppendHopExt(append([]byte(nil), base...), 3), wantHops: 3, wantHopOK: true},
		{name: "trace-only", buf: AppendTraceExt(append([]byte(nil), base...), 0xfeed, 99), wantTID: 0xfeed, wantTrcOK: true},
		{name: "hop-then-trace", buf: AppendTraceExt(AppendHopExt(append([]byte(nil), base...), 7), 0xbeef, 1), wantHops: 7, wantHopOK: true, wantTID: 0xbeef, wantTrcOK: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := decodeHopBody(t, c.buf)
			hops, ok := d.HopExt()
			if ok != c.wantHopOK || hops != c.wantHops {
				t.Fatalf("HopExt = %d, %v; want %d, %v", hops, ok, c.wantHops, c.wantHopOK)
			}
			tid, _, ok := d.TraceExt()
			if ok != c.wantTrcOK || tid != c.wantTID {
				t.Fatalf("TraceExt = %x, %v; want %x, %v", tid, ok, c.wantTID, c.wantTrcOK)
			}
			if err := d.Finish(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHopExtDoesNotConsumeForeign pins self-identification: trailing bytes
// of the right length but the wrong marker, or a hop trailer in the wrong
// position (after the trace trailer), are left for Finish to reject.
func TestHopExtDoesNotConsumeForeign(t *testing.T) {
	base := hopRecord()

	wrongMarker := append(append([]byte(nil), base...), 0x58, 5)
	d := decodeHopBody(t, wrongMarker)
	if _, ok := d.HopExt(); ok {
		t.Fatal("HopExt consumed a trailer with a foreign marker")
	}
	if err := d.Finish(); err == nil {
		t.Fatal("Finish accepted foreign trailing bytes")
	}

	// Trace first, hop second: HopExt sees 19 bytes remaining but the
	// marker at the front is the trace marker, so nothing is consumed.
	misordered := AppendHopExt(AppendTraceExt(append([]byte(nil), base...), 1, 2), 4)
	d = decodeHopBody(t, misordered)
	if _, ok := d.HopExt(); ok {
		t.Fatal("HopExt consumed a misordered trailer pair")
	}
	if err := d.Finish(); err == nil {
		t.Fatal("Finish accepted a misordered trailer pair")
	}
}

// TestHopExtInPlaceRewrite pins the relay fast path: the hop byte sits at a
// fixed offset from the record's end (last byte, or TraceExtSize+1 from the
// end when traced), so a relay increments it without re-encoding.
func TestHopExtInPlaceRewrite(t *testing.T) {
	plain := AppendHopExt(hopRecord(), 0)
	plain[len(plain)-1]++
	d := decodeHopBody(t, plain)
	if hops, ok := d.HopExt(); !ok || hops != 1 {
		t.Fatalf("rewritten hops = %d, %v; want 1", hops, ok)
	}

	traced := AppendTraceExt(AppendHopExt(hopRecord(), 0), 0xabc, 7)
	traced[len(traced)-1-TraceExtSize]++
	traced[len(traced)-1-TraceExtSize]++
	d = decodeHopBody(t, traced)
	if hops, ok := d.HopExt(); !ok || hops != 2 {
		t.Fatalf("rewritten traced hops = %d, %v; want 2", hops, ok)
	}
	if tid, _, ok := d.TraceExt(); !ok || tid != 0xabc {
		t.Fatalf("trace trailer damaged by rewrite: %x, %v", tid, ok)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

package wire

import (
	"bytes"
	"testing"
)

// encodeTraced builds an event-shaped record with the trace trailer.
func encodeTraced(tid uint64, sendNs int64) []byte {
	buf := AppendString(nil, "node-1")
	buf = AppendBytesField(buf, []byte("payload"))
	return AppendTraceExt(buf, tid, sendNs)
}

func TestTraceExtRoundTrip(t *testing.T) {
	rec := encodeTraced(0xABCD000000000042, 1234567890123)
	d := NewDecoder(rec)
	_ = d.StringBytes()
	_ = d.BytesFieldView()
	tid, sendNs, ok := d.TraceExt()
	if !ok || tid != 0xABCD000000000042 || sendNs != 1234567890123 {
		t.Fatalf("TraceExt = %x, %d, %v", tid, sendNs, ok)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish after trailer: %v", err)
	}
}

func TestTraceExtAbsent(t *testing.T) {
	buf := AppendString(nil, "node-1")
	buf = AppendBytesField(buf, []byte("payload"))
	d := NewDecoder(buf)
	_ = d.StringBytes()
	_ = d.BytesFieldView()
	if _, _, ok := d.TraceExt(); ok {
		t.Fatal("TraceExt claimed a trailer on an untraced record")
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish on untraced record: %v", err)
	}
}

// TestTraceExtDoesNotConsumeForeignTrailing pins the self-identification
// contract: bytes that are not exactly a trace trailer are left in place for
// Finish to reject, whether the length or the marker is wrong.
func TestTraceExtDoesNotConsumeForeignTrailing(t *testing.T) {
	base := AppendString(nil, "n")

	// Right length, wrong marker.
	wrongMarker := append(bytes.Clone(base), make([]byte, TraceExtSize)...)
	d := NewDecoder(wrongMarker)
	_ = d.StringBytes()
	if _, _, ok := d.TraceExt(); ok {
		t.Fatal("TraceExt accepted a trailer without the marker")
	}
	if d.Finish() == nil {
		t.Fatal("Finish accepted unconsumed trailing bytes")
	}

	// Right marker, wrong length (extra byte after the trailer).
	longer := AppendTraceExt(bytes.Clone(base), 7, 7)
	longer = append(longer, 0)
	d = NewDecoder(longer)
	_ = d.StringBytes()
	if _, _, ok := d.TraceExt(); ok {
		t.Fatal("TraceExt accepted a trailer that was not the exact remainder")
	}
	if d.Finish() == nil {
		t.Fatal("Finish accepted the malformed tail")
	}
}

func TestTraceExtAfterDecodeErrorIsInert(t *testing.T) {
	d := NewDecoder([]byte{0xFF}) // too short for any field
	_ = d.Uint64()                // sets the sticky error
	if _, _, ok := d.TraceExt(); ok {
		t.Fatal("TraceExt succeeded on an errored decoder")
	}
}

// TestTracedReceivePathIsAllocationFree extends the steady-state allocation
// pin to traced frames: decoding a batch whose records carry trace trailers
// allocates nothing once buffers are warm — tracing must not undo PR 4.
func TestTracedReceivePathIsAllocationFree(t *testing.T) {
	var records [][]byte
	for i, s := range []string{"rec-a", "rec-bb", "rec-ccc"} {
		e := NewEncoder(32)
		e.String("node-1")
		e.Uint64(42)
		e.BytesField([]byte(s))
		rec := AppendTraceExt(e.Bytes(), uint64(0x1000+i), int64(1e9+i))
		records = append(records, rec)
	}
	var stream bytes.Buffer
	if err := WriteFrame(&stream, 3, EncodeBatch(records)); err != nil {
		t.Fatal(err)
	}

	src := &rewindReader{data: stream.Bytes()}
	fr := NewFrameReader(src)
	var batch [][]byte
	var traced int
	receive := func() {
		src.off = 0
		_, payload, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		var derr error
		batch, derr = DecodeBatchInto(batch[:0], payload)
		if derr != nil {
			t.Fatal(derr)
		}
		for _, rec := range batch {
			d := NewDecoder(rec)
			_ = d.StringBytes()
			_ = d.Uint64()
			_ = d.BytesFieldView()
			if tid, _, ok := d.TraceExt(); ok && tid != 0 {
				traced++
			}
			if d.Finish() != nil {
				t.Fatal("decode failed")
			}
		}
	}
	receive()
	if traced != 3 {
		t.Fatalf("warm-up decoded %d traced records, want 3", traced)
	}
	if avg := testing.AllocsPerRun(200, receive); avg != 0 {
		t.Fatalf("traced receive path allocates %.1f times per frame, want 0", avg)
	}
}

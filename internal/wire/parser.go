package wire

import (
	"encoding/binary"
	"fmt"
)

// Parser is an incremental frame decoder for event-driven readers that are
// handed arbitrary byte chunks (nonblocking socket reads) instead of pulling
// whole frames from a blocking stream. It accumulates header and payload
// bytes across calls and performs the same validation as ReadFrame: magic,
// version, and the frame-size bound.
//
// The zero value is ready to use. A Parser is not safe for concurrent use.
type Parser struct {
	hdr  [HeaderSize]byte
	nHdr int
	typ  uint8
	need int
	// buf accumulates a payload that arrived split across reads. When a
	// frame lands whole inside one chunk the parser returns a view into the
	// caller's data instead (the zero-copy fast path), and buf stays empty.
	buf []byte
}

// Next consumes bytes from data, returning how many were consumed and, when
// a frame completed, its type and payload. A call consumes at most one
// frame; callers loop while data remains:
//
//	for len(data) > 0 {
//		n, typ, payload, ok, err := p.Next(data)
//		if err != nil { ... }
//		data = data[n:]
//		if ok { handle(typ, payload) }
//	}
//
// The returned payload is valid only until the next call to Next (it aliases
// either data or the parser's internal buffer). On error the parser is not
// resynchronizable; the caller should drop the connection, matching
// ReadFrame's contract.
func (p *Parser) Next(data []byte) (int, uint8, []byte, bool, error) {
	consumed := 0
	if p.nHdr < HeaderSize {
		n := copy(p.hdr[p.nHdr:], data)
		p.nHdr += n
		consumed += n
		data = data[n:]
		if p.nHdr < HeaderSize {
			return consumed, 0, nil, false, nil
		}
		if binary.BigEndian.Uint16(p.hdr[0:2]) != Magic {
			return consumed, 0, nil, false, ErrBadMagic
		}
		if p.hdr[2] != Version {
			return consumed, 0, nil, false,
				fmt.Errorf("%w: got %d, want %d", ErrBadVersion, p.hdr[2], Version)
		}
		n32 := binary.BigEndian.Uint32(p.hdr[4:HeaderSize])
		if n32 > MaxFrameSize {
			return consumed, 0, nil, false, ErrFrameSize
		}
		p.typ = p.hdr[3]
		p.need = int(n32)
		// A previous oversized payload must not pin its buffer across
		// frames; the steady-state buffer is reused.
		if cap(p.buf) > maxPooledBuf {
			p.buf = nil
		}
		p.buf = p.buf[:0]
	}
	if len(p.buf) == 0 && len(data) >= p.need {
		// Fast path: the whole payload is already in this chunk — hand back
		// a view without copying.
		payload := data[:p.need]
		consumed += p.need
		typ := p.typ
		p.nHdr = 0
		return consumed, typ, payload, true, nil
	}
	take := p.need - len(p.buf)
	if take > len(data) {
		take = len(data)
	}
	if cap(p.buf) < p.need {
		grown := make([]byte, len(p.buf), p.need)
		copy(grown, p.buf)
		p.buf = grown
	}
	p.buf = append(p.buf, data[:take]...)
	consumed += take
	if len(p.buf) < p.need {
		return consumed, 0, nil, false, nil
	}
	typ := p.typ
	p.nHdr = 0
	return consumed, typ, p.buf, true, nil
}

// Package wire implements the compact binary framing and field codec used by
// the KECho event channels and the channel registry. The paper's kernel
// modules exchange fixed binary records over kernel sockets; this codec plays
// the same role for the user-space reproduction: length-prefixed frames with
// a one-byte message type, and a sticky-error field encoder/decoder so call
// sites stay free of per-field error plumbing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Protocol constants.
const (
	// Magic marks the start of every frame; it guards against desync and
	// cross-protocol connections.
	Magic uint16 = 0xDC03 // "dproc 2003"
	// Version is the wire protocol version.
	Version uint8 = 1
	// HeaderSize is the fixed frame header size in bytes:
	// magic(2) + version(1) + type(1) + length(4).
	HeaderSize = 8
	// MaxFrameSize bounds a frame payload (16 MiB) so a corrupt length field
	// cannot drive an unbounded allocation. SmartPointer frames (3 MB) fit
	// with ample headroom.
	MaxFrameSize = 16 << 20
)

// Errors returned by frame and field decoding.
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrFrameSize  = errors.New("wire: frame exceeds maximum size")
	ErrShortField = errors.New("wire: field extends past end of payload")
	ErrTrailing   = errors.New("wire: trailing bytes after last field")
)

// WriteFrame writes one frame (header + payload) to w.
func WriteFrame(w io.Writer, msgType uint8, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameSize
	}
	hdr := make([]byte, HeaderSize, HeaderSize+len(payload))
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = msgType
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	// A single Write keeps the frame atomic with respect to concurrent
	// writers that serialize on a mutex around this call.
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads one frame from r, returning its type and payload.
func ReadFrame(r io.Reader) (msgType uint8, payload []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if hdr[2] != Version {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[2], Version)
	}
	msgType = hdr[3]
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameSize
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame payload: %w", err)
	}
	return msgType, payload, nil
}

// ErrBadBatch reports a malformed batch payload.
var ErrBadBatch = errors.New("wire: malformed batch payload")

// EncodeBatch packs event payloads into one batch frame payload: a uint32
// count followed by count length-prefixed payloads. A writer that wakes up
// with several events queued for the same peer coalesces them into a single
// frame — one length prefix, one syscall — while preserving their order.
// Empty and single-event batches are valid.
func EncodeBatch(events [][]byte) []byte {
	size := 4
	for _, ev := range events {
		size += 4 + len(ev)
	}
	e := NewEncoder(size)
	e.Uint32(uint32(len(events)))
	for _, ev := range events {
		e.BytesField(ev)
	}
	return e.Bytes()
}

// DecodeBatch unpacks a batch frame payload into its event payloads, in the
// order they were encoded. Each returned slice is an independent copy.
func DecodeBatch(buf []byte) ([][]byte, error) {
	d := NewDecoder(buf)
	n := d.Uint32()
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, d.Err())
	}
	// Each event costs at least its 4-byte length prefix; reject counts the
	// payload cannot possibly hold before allocating for them.
	if int64(n)*4 > int64(d.Remaining()) {
		return nil, fmt.Errorf("%w: count %d exceeds payload", ErrBadBatch, n)
	}
	events := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		events = append(events, d.BytesField())
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
	}
	return events, nil
}

// Encoder serializes fields into a growable buffer. The zero value is ready
// to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// Bytes returns the encoded buffer. The buffer is owned by the encoder and
// valid until the next mutating call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Uint16 appends a big-endian 16-bit value.
func (e *Encoder) Uint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// Uint32 appends a big-endian 32-bit value.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a big-endian 64-bit value.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends a 64-bit signed value (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Time appends a timestamp as nanoseconds since the Unix epoch.
func (e *Encoder) Time(t time.Time) { e.Int64(t.UnixNano()) }

// String appends a length-prefixed UTF-8 string (max 4 GiB).
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// BytesField appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder deserializes fields from a buffer with a sticky error: after the
// first failure every subsequent read returns the zero value, and Err()
// reports the original problem. This mirrors the kernel pattern of a single
// validity check after parsing a whole record.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over buf. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left to decode.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or bytes remain unconsumed.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortField
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint16 reads a big-endian 16-bit value.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 reads a big-endian 32-bit value.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian 64-bit value.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a 64-bit signed value.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Time reads a timestamp encoded as Unix nanoseconds.
func (d *Decoder) Time() time.Time {
	ns := d.Int64()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// BytesField reads a length-prefixed byte slice. The result is copied so it
// remains valid independently of the decoder's backing buffer.
func (d *Decoder) BytesField() []byte {
	n := d.Uint32()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Package wire implements the compact binary framing and field codec used by
// the KECho event channels and the channel registry. The paper's kernel
// modules exchange fixed binary records over kernel sockets; this codec plays
// the same role for the user-space reproduction: length-prefixed frames with
// a one-byte message type, and a sticky-error field encoder/decoder so call
// sites stay free of per-field error plumbing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// Protocol constants.
const (
	// Magic marks the start of every frame; it guards against desync and
	// cross-protocol connections.
	Magic uint16 = 0xDC03 // "dproc 2003"
	// Version is the wire protocol version.
	Version uint8 = 1
	// HeaderSize is the fixed frame header size in bytes:
	// magic(2) + version(1) + type(1) + length(4).
	HeaderSize = 8
	// MaxFrameSize bounds a frame payload (16 MiB) so a corrupt length field
	// cannot drive an unbounded allocation. SmartPointer frames (3 MB) fit
	// with ample headroom.
	MaxFrameSize = 16 << 20
)

// Errors returned by frame and field decoding.
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrFrameSize  = errors.New("wire: frame exceeds maximum size")
	ErrShortField = errors.New("wire: field extends past end of payload")
	ErrTrailing   = errors.New("wire: trailing bytes after last field")
)

// maxPooledBuf caps the capacity of scratch buffers retained by the package
// pools. A frame may legally approach MaxFrameSize (16 MiB); keeping such a
// buffer alive in a pool would pin it forever, so oversized scratch is
// dropped after use and reallocated on the rare frames that need it.
const maxPooledBuf = 64 << 10

// frameScratch is the per-write scratch WriteFrame draws from a pool: the
// fixed header, a two-element vector for the writev path, and a contiguous
// buffer for the copying fallback.
type frameScratch struct {
	hdr  [HeaderSize]byte
	vec  [2][]byte
	bufs net.Buffers
	buf  []byte
}

var frameScratchPool = sync.Pool{New: func() any { return new(frameScratch) }}

func (s *frameScratch) release() {
	s.vec[0], s.vec[1] = nil, nil // drop the payload reference
	s.bufs = nil
	if cap(s.buf) > maxPooledBuf {
		s.buf = nil
	}
	frameScratchPool.Put(s)
}

// WriteFrame writes one frame (header + payload) to w.
//
// TCP connections take the writev path: header and payload go out in a
// single vectored write (net.Buffers) with no copy. Every other writer gets
// header and payload copied into a pooled scratch buffer and written with
// one Write call. Both paths issue a single write, so the frame stays atomic
// with respect to concurrent writers that serialize on a mutex around this
// call, and neither allocates in steady state.
func WriteFrame(w io.Writer, msgType uint8, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameSize
	}
	s := frameScratchPool.Get().(*frameScratch)
	defer s.release()
	binary.BigEndian.PutUint16(s.hdr[0:2], Magic)
	s.hdr[2] = Version
	s.hdr[3] = msgType
	binary.BigEndian.PutUint32(s.hdr[4:8], uint32(len(payload)))
	if tc, ok := w.(*net.TCPConn); ok {
		s.vec[0], s.vec[1] = s.hdr[:], payload
		s.bufs = s.vec[:]
		_, err := s.bufs.WriteTo(tc)
		return err
	}
	s.buf = append(append(s.buf[:0], s.hdr[:]...), payload...)
	_, err := w.Write(s.buf)
	return err
}

// ReadFrame reads one frame from r, returning its type and a freshly
// allocated payload the caller owns. Hot paths that read many frames from
// one connection should use a FrameReader (or ReadFrameInto) to reuse a
// per-connection receive buffer instead.
func ReadFrame(r io.Reader) (msgType uint8, payload []byte, err error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto reads one frame from r, filling the payload into buf when it
// fits buf's capacity (the returned payload then aliases buf) and allocating
// a fresh slice only when the frame is larger. Callers maintaining a
// per-connection receive buffer pass the previous returned payload's backing
// buffer back in; FrameReader packages that pattern.
func ReadFrameInto(r io.Reader, buf []byte) (msgType uint8, payload []byte, err error) {
	var hdr [HeaderSize]byte
	return readFrameInto(r, buf, hdr[:])
}

// readFrameInto is ReadFrameInto with a caller-owned header scratch, so a
// FrameReader's steady state avoids the per-call header allocation (the
// array would otherwise escape into the io.ReadFull interface call).
func readFrameInto(r io.Reader, buf, hdr []byte) (msgType uint8, payload []byte, err error) {
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if hdr[2] != Version {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[2], Version)
	}
	msgType = hdr[3]
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameSize
	}
	if int(n) <= cap(buf) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame payload: %w", err)
	}
	return msgType, payload, nil
}

// FrameReader reads length-prefixed frames from one connection, reusing a
// single receive buffer across frames so the steady-state receive path does
// not allocate. The buffer grows to the largest frame seen.
//
// Ownership contract: the payload returned by Next aliases the reader's
// buffer and is valid only until the next Next call. A consumer that needs
// the bytes longer must copy them before returning to the read loop.
type FrameReader struct {
	r   io.Reader
	buf []byte
	hdr [HeaderSize]byte
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next reads one frame, returning its type and payload. The payload is valid
// only until the next call to Next.
func (fr *FrameReader) Next() (msgType uint8, payload []byte, err error) {
	msgType, payload, err = readFrameInto(fr.r, fr.buf, fr.hdr[:])
	if err != nil {
		return msgType, nil, err
	}
	if cap(payload) > cap(fr.buf) {
		// Adopt the grown buffer so the next frame of this size reuses it.
		fr.buf = payload[:cap(payload)]
	}
	return msgType, payload, nil
}

// ErrBadBatch reports a malformed batch payload.
var ErrBadBatch = errors.New("wire: malformed batch payload")

// EncodeBatch packs event payloads into one batch frame payload: a uint32
// count followed by count length-prefixed payloads. A writer that wakes up
// with several events queued for the same peer coalesces them into a single
// frame — one length prefix, one syscall — while preserving their order.
// Empty and single-event batches are valid.
func EncodeBatch(events [][]byte) []byte {
	size := 4
	for _, ev := range events {
		size += 4 + len(ev)
	}
	return AppendBatch(make([]byte, 0, size), events)
}

// AppendBatch appends the batch encoding of events to dst and returns the
// extended buffer, so a writer with a reusable scratch buffer can encode
// batches without allocating.
func AppendBatch(dst []byte, events [][]byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(events)))
	for _, ev := range events {
		dst = AppendBytesField(dst, ev)
	}
	return dst
}

// DecodeBatch unpacks a batch frame payload into its event payloads, in the
// order they were encoded. Each returned slice is an independent copy; for
// the zero-copy variant see DecodeBatchInto.
func DecodeBatch(buf []byte) ([][]byte, error) {
	events, err := DecodeBatchInto(nil, buf)
	if err != nil {
		return nil, err
	}
	for i, ev := range events {
		out := make([]byte, len(ev))
		copy(out, ev)
		events[i] = out
	}
	return events, nil
}

// DecodeBatchInto unpacks a batch frame payload, appending each event to dst
// (reusing dst's backing array) and returning the extended slice.
//
// Zero-copy ownership contract: the appended event slices are subslices of
// buf — no bytes are copied. They are valid only while the caller owns buf;
// once buf is reused (e.g. the connection's receive buffer accepts the next
// frame) every returned event aliases the new contents. Consumers must
// finish with, or copy, each event before releasing buf.
func DecodeBatchInto(dst [][]byte, buf []byte) ([][]byte, error) {
	d := NewDecoder(buf)
	n := d.Uint32()
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, d.Err())
	}
	// Each event costs at least its 4-byte length prefix; reject counts the
	// payload cannot possibly hold before allocating for them.
	if int64(n)*4 > int64(d.Remaining()) {
		return nil, fmt.Errorf("%w: count %d exceeds payload", ErrBadBatch, n)
	}
	if dst == nil {
		dst = make([][]byte, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		dst = append(dst, d.BytesFieldView())
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
	}
	return dst, nil
}

// Encoder serializes fields into a growable buffer. The zero value is ready
// to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled Encoder, empty and ready to use. Release it
// with Release once the encoded bytes have been consumed; the bytes returned
// by Bytes are owned by the encoder and die with the Release.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

// Release returns a pooled encoder for reuse. The encoder and any slice
// obtained from Bytes must not be used afterwards. Oversized scratch
// (beyond 64 KiB) is dropped so the pool cannot pin large frames.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	encoderPool.Put(e)
}

// Bytes returns the encoded buffer. The buffer is owned by the encoder and
// valid until the next mutating call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Uint16 appends a big-endian 16-bit value.
func (e *Encoder) Uint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// Uint32 appends a big-endian 32-bit value.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a big-endian 64-bit value.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends a 64-bit signed value (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Time appends a timestamp as nanoseconds since the Unix epoch.
func (e *Encoder) Time(t time.Time) { e.Int64(t.UnixNano()) }

// String appends a length-prefixed UTF-8 string (max 4 GiB).
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// BytesField appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// AppendString appends a length-prefixed string to dst (the Encoder.String
// encoding) and returns the extended buffer, for callers that manage their
// own scratch buffers instead of an Encoder.
func AppendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendBytesField appends a length-prefixed byte slice to dst (the
// Encoder.BytesField encoding) and returns the extended buffer.
func AppendBytesField(dst []byte, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// Trace extension: a sampled event record carries its trace ID and the
// publisher's send timestamp as a fixed-size trailer appended after the
// last field. Unsampled events — the overwhelming majority — pay zero
// bytes. The trailer is self-identifying: Decoder.TraceExt consumes it only
// when exactly TraceExtSize bytes remain and the marker matches, so a
// decoder that ignores it still rejects the record via Finish exactly as it
// rejects any other trailing bytes (no silent misparse on either side).
const (
	// TraceExtSize is the trailer length: marker byte + trace ID + send
	// time in Unix nanoseconds.
	TraceExtSize = 1 + 8 + 8
	// traceExtMarker distinguishes the trailer from ordinary field bytes.
	traceExtMarker = 0x54 // 'T'
)

// AppendTraceExt appends the trace trailer to an encoded record.
func AppendTraceExt(dst []byte, traceID uint64, sendUnixNano int64) []byte {
	dst = append(dst, traceExtMarker)
	dst = binary.BigEndian.AppendUint64(dst, traceID)
	return binary.BigEndian.AppendUint64(dst, uint64(sendUnixNano))
}

// TraceExt consumes the trace trailer if (and only if) it is exactly what
// remains in the buffer, returning its contents. When absent or malformed
// it consumes nothing and reports ok=false, leaving Finish to classify the
// leftover bytes.
func (d *Decoder) TraceExt() (traceID uint64, sendUnixNano int64, ok bool) {
	if d.err != nil || d.Remaining() != TraceExtSize || d.buf[d.off] != traceExtMarker {
		return 0, 0, false
	}
	d.off++
	traceID = binary.BigEndian.Uint64(d.buf[d.off:])
	sendUnixNano = int64(binary.BigEndian.Uint64(d.buf[d.off+8:]))
	d.off += 16
	return traceID, sendUnixNano, true
}

// Hop extension: a record traveling through a relay tree carries its hop
// count as a fixed-size trailer so relays can bound propagation depth (loop
// prevention) and receivers can attribute latency to tree depth. Like the
// trace extension it is self-identifying and optional: flat-mesh records
// never carry it and pay zero bytes. When both extensions are present the
// hop trailer precedes the trace trailer — relays rewrite the hop byte in
// place at a fixed offset from the record's end, which a variable trailer
// order would break.
const (
	// HopExtSize is the trailer length: marker byte + hop count.
	HopExtSize = 1 + 1
	// hopExtMarker distinguishes the trailer from ordinary field bytes.
	hopExtMarker = 0x48 // 'H'
	// MaxHops bounds the hop counter (and with it relay-tree depth): the
	// counter is a single byte, and a record whose increment would pass
	// this value is dropped rather than forwarded.
	MaxHops = 255
)

// AppendHopExt appends the hop trailer to an encoded record. It must be
// appended before any trace trailer so the hop byte sits at a fixed
// distance from the record's end.
func AppendHopExt(dst []byte, hops uint8) []byte {
	return append(dst, hopExtMarker, hops)
}

// HopExt consumes the hop trailer if it is what remains in the buffer —
// either alone or followed by exactly one trace trailer — returning the hop
// count. When absent it consumes nothing and reports ok=false; the record
// then decodes exactly as a flat-mesh record does.
func (d *Decoder) HopExt() (hops uint8, ok bool) {
	r := d.Remaining()
	if d.err != nil || (r != HopExtSize && r != HopExtSize+TraceExtSize) || d.buf[d.off] != hopExtMarker {
		return 0, false
	}
	hops = d.buf[d.off+1]
	d.off += HopExtSize
	return hops, true
}

// Decoder deserializes fields from a buffer with a sticky error: after the
// first failure every subsequent read returns the zero value, and Err()
// reports the original problem. This mirrors the kernel pattern of a single
// validity check after parsing a whole record.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over buf. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left to decode.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or bytes remain unconsumed.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortField
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint16 reads a big-endian 16-bit value.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 reads a big-endian 32-bit value.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian 64-bit value.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a 64-bit signed value.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Time reads a timestamp encoded as Unix nanoseconds.
func (d *Decoder) Time() time.Time {
	ns := d.Int64()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// BytesField reads a length-prefixed byte slice. The result is copied so it
// remains valid independently of the decoder's backing buffer.
func (d *Decoder) BytesField() []byte {
	n := d.Uint32()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// BytesFieldView reads a length-prefixed byte slice without copying. The
// result aliases the decoder's backing buffer and is only valid while that
// buffer is; callers that hand the buffer back (pooled receive buffers) must
// consume or copy the view first.
func (d *Decoder) BytesFieldView() []byte {
	n := d.Uint32()
	return d.take(int(n))
}

// StringBytes reads a length-prefixed string field, returning its raw bytes
// without the string allocation. Like BytesFieldView, the result aliases the
// decoder's buffer. Hot paths use it to compare or intern identifiers
// without allocating per record.
func (d *Decoder) StringBytes() []byte {
	n := d.Uint32()
	return d.take(int(n))
}

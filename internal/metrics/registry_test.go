package metrics

import (
	"strings"
	"testing"
)

// fakeDist is a canned Distribution so this test does not depend on
// internal/obs (which imports this package).
type fakeDist struct {
	count uint64
	sum   uint64
	q     int64
}

func (f fakeDist) Count() uint64          { return f.count }
func (f fakeDist) Sum() uint64            { return f.sum }
func (f fakeDist) Quantile(float64) int64 { return f.q }

func TestCounterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("channel", "mon", "sent")
	a.Add(3)
	// Re-registering the same counter returns the same cell, not a fresh one.
	b := r.Counter("channel", "mon", "sent")
	if a != b {
		t.Fatal("re-registration returned a different cell")
	}
	b.Add(4)
	if got, ok := r.Value("channel", "mon", "sent"); !ok || got != 7 {
		t.Fatalf("counter = %d, %v, want 7", got, ok)
	}
	// Only one entry exists for the pair of registrations.
	n := 0
	r.Each(func(Entry) { n++ })
	if n != 1 {
		t.Fatalf("registry holds %d entries, want 1", n)
	}
}

func TestGaugeReplacement(t *testing.T) {
	r := NewRegistry()
	r.Gauge("registry", "", "dials", func() uint64 { return 1 })
	r.Gauge("registry", "", "dials", func() uint64 { return 9 })
	if got, ok := r.Value("registry", "", "dials"); !ok || got != 9 {
		t.Fatalf("gauge = %d, %v, want replacement value 9", got, ok)
	}
	n := 0
	r.Each(func(Entry) { n++ })
	if n != 1 {
		t.Fatalf("registry holds %d entries after replacement, want 1", n)
	}
}

func TestRenderTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("channel", "mon", "events_sent").Add(12)
	r.Distribution("obs", "", "filter_run", "ns", fakeDist{count: 1, sum: 1000, q: 1024})
	var sb strings.Builder
	r.RenderText(&sb)
	out := sb.String()
	if !strings.Contains(out, "channel mon events_sent 12\n") {
		t.Fatalf("labelled counter line missing:\n%s", out)
	}
	// Empty-label entries render with no label column, and ns distributions
	// carry the _ns suffix on sum and quantiles.
	if !strings.Contains(out, "obs filter_run count 1 sum_ns 1000") ||
		!strings.Contains(out, "p99_ns 1024") {
		t.Fatalf("distribution line malformed:\n%s", out)
	}
}

func TestRenderPromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("channel", `he"llo`, "events_sent").Add(5)
	r.Gauge("registry", "", "dials", func() uint64 { return 2 })
	// 2s recorded in nanoseconds: sum and quantiles must scale to seconds.
	r.Distribution("obs", "", "prop_delay", "ns",
		fakeDist{count: 1, sum: 2_000_000_000, q: 2_000_000_000})
	var sb strings.Builder
	r.RenderProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE dproc_channel_events_sent_total counter\n",
		`dproc_channel_events_sent_total{channel="he\"llo"} 5` + "\n",
		"# TYPE dproc_registry_dials gauge\ndproc_registry_dials 2\n",
		"# TYPE dproc_obs_prop_delay_seconds summary\n",
		`dproc_obs_prop_delay_seconds{quantile="0.95"} 2` + "\n",
		"dproc_obs_prop_delay_seconds_sum 2\n",
		"dproc_obs_prop_delay_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2000000000") {
		t.Fatalf("raw nanoseconds leaked into prom output:\n%s", out)
	}
}

// Package metrics defines the monitored quantities exchanged by dproc nodes:
// metric identifiers (stable indices so E-code filters can reference
// input[LOADAVG] exactly as in the paper's Figure 3), individual samples,
// and the per-poll report that d-mon submits to the monitoring channel.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"dproc/internal/wire"
)

// ID identifies one monitored quantity. The numeric values are part of the
// filter ABI: E-code filters index the input[] record array by these
// constants, so they are stable across nodes.
type ID int

// Metric identifiers, grouped by the monitoring module that produces them.
const (
	// CPU_MON: average run-queue length over the configured window.
	LOADAVG ID = iota
	// CPU_MON: number of runnable tasks at the last sample.
	RUNQUEUE
	// MEM_MON: free memory in bytes (paper: nr_free_pages).
	FREEMEM
	// MEM_MON: total memory in bytes.
	TOTALMEM
	// DISK_MON: average reads completed per second over the period.
	DISKREADS
	// DISK_MON: average writes completed per second over the period.
	DISKWRITES
	// DISK_MON: average sectors read per second over the period.
	SECTORSREAD
	// DISK_MON: average sectors written per second over the period.
	SECTORSWRITTEN
	// DISK_MON: combined sectors moved per second (the paper's "disk usage").
	DISKUSAGE
	// NET_MON: used bandwidth across all connections, bits per second.
	NETBW
	// NET_MON: available bandwidth estimate on the node's link, bits/s.
	NETAVAIL
	// NET_MON: mean round-trip time across established connections, seconds.
	NETRTT
	// NET_MON: TCP retransmissions per second.
	NETRETRANS
	// NET_MON: UDP messages lost per second.
	NETLOST
	// NET_MON: mean end-to-end delay, seconds.
	NETDELAY
	// PMC: cache misses per second (performance monitoring counter).
	CACHE_MISS
	// PMC: retired instructions per second.
	INSTRUCTIONS
	// PMC: unhalted cycles per second.
	CYCLES
	// POWER_MON: remaining battery capacity, percent. The paper's example
	// of monitoring functionality deployed dynamically for mobile devices
	// ("the current battery power in mobile devices"); its conclusions make
	// power a first-class resource for the wireless/embedded future work.
	BATTERY
	// POWER_MON: present power draw, watts.
	POWERDRAW

	// NumIDs is the size of the metric ID space (and of filter input arrays).
	NumIDs
)

// Resource is the coarse resource class a metric belongs to; parameters and
// control files address metrics by resource (e.g. "update the CPU info every
// 2 seconds").
type Resource int

// Resource classes, one per monitoring module in the paper's Figure 2.
const (
	CPU Resource = iota
	Memory
	Disk
	Network
	PMC
	Power
	NumResources
)

var resourceNames = [NumResources]string{"cpu", "mem", "disk", "net", "pmc", "power"}

// String returns the lower-case resource name used in control files.
func (r Resource) String() string {
	if r < 0 || r >= NumResources {
		return fmt.Sprintf("resource(%d)", int(r))
	}
	return resourceNames[r]
}

// ParseResource maps a control-file resource name to its Resource.
func ParseResource(name string) (Resource, bool) {
	for r, n := range resourceNames {
		if n == name {
			return Resource(r), true
		}
	}
	return 0, false
}

type idInfo struct {
	name     string // pseudo-file / filter symbol name
	resource Resource
	unit     string
}

var idTable = [NumIDs]idInfo{
	LOADAVG:        {"loadavg", CPU, "tasks"},
	RUNQUEUE:       {"runqueue", CPU, "tasks"},
	FREEMEM:        {"freemem", Memory, "bytes"},
	TOTALMEM:       {"totalmem", Memory, "bytes"},
	DISKREADS:      {"diskreads", Disk, "ops/s"},
	DISKWRITES:     {"diskwrites", Disk, "ops/s"},
	SECTORSREAD:    {"sectorsread", Disk, "sectors/s"},
	SECTORSWRITTEN: {"sectorswritten", Disk, "sectors/s"},
	DISKUSAGE:      {"diskusage", Disk, "sectors/s"},
	NETBW:          {"netbw", Network, "bits/s"},
	NETAVAIL:       {"netavail", Network, "bits/s"},
	NETRTT:         {"netrtt", Network, "s"},
	NETRETRANS:     {"netretrans", Network, "ops/s"},
	NETLOST:        {"netlost", Network, "ops/s"},
	NETDELAY:       {"netdelay", Network, "s"},
	CACHE_MISS:     {"cache_miss", PMC, "misses/s"},
	INSTRUCTIONS:   {"instructions", PMC, "ops/s"},
	CYCLES:         {"cycles", PMC, "cycles/s"},
	BATTERY:        {"battery", Power, "%"},
	POWERDRAW:      {"powerdraw", Power, "W"},
}

// Valid reports whether id is a defined metric identifier.
func (id ID) Valid() bool { return id >= 0 && id < NumIDs }

// String returns the metric's pseudo-file name (e.g. "loadavg").
func (id ID) String() string {
	if !id.Valid() {
		return fmt.Sprintf("metric(%d)", int(id))
	}
	return idTable[id].name
}

// Resource returns the resource class the metric belongs to.
func (id ID) Resource() Resource {
	if !id.Valid() {
		return NumResources
	}
	return idTable[id].resource
}

// Unit returns the human-readable unit for the metric.
func (id ID) Unit() string {
	if !id.Valid() {
		return ""
	}
	return idTable[id].unit
}

// FilterSymbol returns the upper-case constant name exposed to E-code
// filters, e.g. LOADAVG or CACHE_MISS.
var filterSymbols = func() map[ID]string {
	m := make(map[ID]string, NumIDs)
	m[LOADAVG] = "LOADAVG"
	m[RUNQUEUE] = "RUNQUEUE"
	m[FREEMEM] = "FREEMEM"
	m[TOTALMEM] = "TOTALMEM"
	m[DISKREADS] = "DISKREADS"
	m[DISKWRITES] = "DISKWRITES"
	m[SECTORSREAD] = "SECTORSREAD"
	m[SECTORSWRITTEN] = "SECTORSWRITTEN"
	m[DISKUSAGE] = "DISKUSAGE"
	m[NETBW] = "NETBW"
	m[NETAVAIL] = "NETAVAIL"
	m[NETRTT] = "NETRTT"
	m[NETRETRANS] = "NETRETRANS"
	m[NETLOST] = "NETLOST"
	m[NETDELAY] = "NETDELAY"
	m[CACHE_MISS] = "CACHE_MISS"
	m[INSTRUCTIONS] = "INSTRUCTIONS"
	m[CYCLES] = "CYCLES"
	m[BATTERY] = "BATTERY"
	m[POWERDRAW] = "POWERDRAW"
	return m
}()

// FilterSymbol returns the constant name visible inside E-code filters.
func (id ID) FilterSymbol() string { return filterSymbols[id] }

// FilterSymbols returns the full symbol→index map handed to the E-code
// compiler, sorted deterministically for reproducible compilation.
func FilterSymbols() map[string]int {
	m := make(map[string]int, NumIDs)
	for id, name := range filterSymbols {
		m[name] = int(id)
	}
	return m
}

// ParseID maps a pseudo-file name (e.g. "loadavg") to its ID.
func ParseID(name string) (ID, bool) {
	for i := ID(0); i < NumIDs; i++ {
		if idTable[i].name == name {
			return i, true
		}
	}
	return 0, false
}

// IDsForResource returns all metric IDs belonging to resource r, in ID order.
func IDsForResource(r Resource) []ID {
	var out []ID
	for i := ID(0); i < NumIDs; i++ {
		if idTable[i].resource == r {
			out = append(out, i)
		}
	}
	return out
}

// AllIDs returns every defined metric ID in order.
func AllIDs() []ID {
	out := make([]ID, NumIDs)
	for i := range out {
		out[i] = ID(i)
	}
	return out
}

// Sample is one monitored value at one instant, together with the last value
// that was actually sent to the channel — the `last_value_sent` field that
// E-code filters and the differential threshold compare against.
type Sample struct {
	ID       ID
	Value    float64
	LastSent float64
	Time     time.Time
}

// Report is the batch of samples one d-mon submits in one poll iteration.
// Padding emulates the paper's variable event sizes (Figure 7 uses ~5 KB
// events) without inventing extra metrics.
type Report struct {
	Node    string
	Seq     uint64
	Time    time.Time
	Samples []Sample
	Padding []byte
}

// Size returns the encoded size of the report in bytes.
func (r *Report) Size() int { return len(r.Encode()) }

// Encode serializes the report with the wire codec.
func (r *Report) Encode() []byte {
	e := wire.NewEncoder(64 + 32*len(r.Samples) + len(r.Padding))
	e.String(r.Node)
	e.Uint64(r.Seq)
	e.Time(r.Time)
	e.Uint32(uint32(len(r.Samples)))
	for _, s := range r.Samples {
		e.Uint16(uint16(s.ID))
		e.Float64(s.Value)
		e.Float64(s.LastSent)
		e.Time(s.Time)
	}
	e.BytesField(r.Padding)
	return e.Bytes()
}

// DecodeReport parses a report previously produced by Encode.
func DecodeReport(buf []byte) (*Report, error) {
	d := wire.NewDecoder(buf)
	r := &Report{
		Node: d.String(),
		Seq:  d.Uint64(),
		Time: d.Time(),
	}
	n := d.Uint32()
	if int(n) > d.Remaining()/10 { // each sample is at least 26 bytes; 10 is a safe floor
		return nil, fmt.Errorf("metrics: implausible sample count %d for %d remaining bytes", n, d.Remaining())
	}
	r.Samples = make([]Sample, n)
	for i := range r.Samples {
		r.Samples[i] = Sample{
			ID:       ID(d.Uint16()),
			Value:    d.Float64(),
			LastSent: d.Float64(),
			Time:     d.Time(),
		}
	}
	r.Padding = d.BytesField()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("metrics: decoding report: %w", err)
	}
	for _, s := range r.Samples {
		if !s.ID.Valid() {
			return nil, fmt.Errorf("metrics: invalid metric id %d in report", int(s.ID))
		}
	}
	return r, nil
}

// ByID returns the sample for id, if present.
func (r *Report) ByID(id ID) (Sample, bool) {
	for _, s := range r.Samples {
		if s.ID == id {
			return s, true
		}
	}
	return Sample{}, false
}

// SortSamples orders samples by ID for deterministic output.
func (r *Report) SortSamples() {
	sort.Slice(r.Samples, func(i, j int) bool { return r.Samples[i].ID < r.Samples[j].ID })
}

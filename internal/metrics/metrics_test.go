package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestIDStringAndParseRoundTrip(t *testing.T) {
	for _, id := range AllIDs() {
		name := id.String()
		if name == "" || strings.Contains(name, "(") {
			t.Fatalf("id %d has no name", int(id))
		}
		got, ok := ParseID(name)
		if !ok || got != id {
			t.Fatalf("ParseID(%q) = (%v, %v), want %v", name, got, ok, id)
		}
	}
}

func TestParseIDUnknown(t *testing.T) {
	if _, ok := ParseID("nonsense"); ok {
		t.Fatal("ParseID accepted an unknown name")
	}
}

func TestInvalidIDFormatting(t *testing.T) {
	bad := ID(999)
	if bad.Valid() {
		t.Fatal("ID(999).Valid() = true")
	}
	if got := bad.String(); got != "metric(999)" {
		t.Fatalf("String = %q", got)
	}
	if bad.Resource() != NumResources {
		t.Fatal("invalid ID resource should be NumResources")
	}
	if bad.Unit() != "" {
		t.Fatal("invalid ID unit should be empty")
	}
}

func TestEveryIDHasResourceUnitSymbol(t *testing.T) {
	for _, id := range AllIDs() {
		if r := id.Resource(); r < 0 || r >= NumResources {
			t.Errorf("%v has invalid resource %v", id, r)
		}
		if id.Unit() == "" {
			t.Errorf("%v has no unit", id)
		}
		if id.FilterSymbol() == "" {
			t.Errorf("%v has no filter symbol", id)
		}
	}
}

func TestResourceStringAndParse(t *testing.T) {
	for r := Resource(0); r < NumResources; r++ {
		got, ok := ParseResource(r.String())
		if !ok || got != r {
			t.Fatalf("ParseResource(%q) = (%v,%v)", r.String(), got, ok)
		}
	}
	if _, ok := ParseResource("gpu"); ok {
		t.Fatal("ParseResource accepted unknown resource")
	}
	if got := Resource(42).String(); got != "resource(42)" {
		t.Fatalf("out-of-range resource String = %q", got)
	}
}

func TestIDsForResourcePartitionsIDSpace(t *testing.T) {
	total := 0
	for r := Resource(0); r < NumResources; r++ {
		ids := IDsForResource(r)
		total += len(ids)
		for _, id := range ids {
			if id.Resource() != r {
				t.Errorf("IDsForResource(%v) contains %v with resource %v", r, id, id.Resource())
			}
		}
	}
	if total != int(NumIDs) {
		t.Fatalf("resources partition %d IDs, want %d", total, NumIDs)
	}
}

func TestFilterSymbolsAreUniqueAndComplete(t *testing.T) {
	syms := FilterSymbols()
	if len(syms) != int(NumIDs) {
		t.Fatalf("FilterSymbols has %d entries, want %d", len(syms), NumIDs)
	}
	seen := map[int]bool{}
	for name, idx := range syms {
		if name != strings.ToUpper(name) {
			t.Errorf("symbol %q not upper-case", name)
		}
		if seen[idx] {
			t.Errorf("index %d appears twice", idx)
		}
		seen[idx] = true
	}
	// Figure 3 of the paper uses these exact names.
	for _, want := range []string{"LOADAVG", "DISKUSAGE", "FREEMEM", "CACHE_MISS"} {
		if _, ok := syms[want]; !ok {
			t.Errorf("paper symbol %q missing", want)
		}
	}
}

func sampleReport() *Report {
	ts := time.Date(2003, 6, 23, 1, 2, 3, 0, time.UTC)
	return &Report{
		Node: "alan",
		Seq:  42,
		Time: ts,
		Samples: []Sample{
			{ID: LOADAVG, Value: 2.5, LastSent: 2.0, Time: ts},
			{ID: FREEMEM, Value: 48e6, LastSent: 50e6, Time: ts.Add(time.Millisecond)},
			{ID: CACHE_MISS, Value: 123456, LastSent: 100000, Time: ts},
		},
		Padding: []byte{0xAA, 0xBB},
	}
}

func TestReportEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleReport()
	dec, err := DecodeReport(r.Encode())
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if dec.Node != r.Node || dec.Seq != r.Seq || !dec.Time.Equal(r.Time) {
		t.Fatalf("header mismatch: %+v", dec)
	}
	if len(dec.Samples) != len(r.Samples) {
		t.Fatalf("samples = %d, want %d", len(dec.Samples), len(r.Samples))
	}
	for i, s := range r.Samples {
		g := dec.Samples[i]
		if g.ID != s.ID || g.Value != s.Value || g.LastSent != s.LastSent || !g.Time.Equal(s.Time) {
			t.Errorf("sample %d = %+v, want %+v", i, g, s)
		}
	}
	if len(dec.Padding) != 2 || dec.Padding[0] != 0xAA {
		t.Fatalf("padding = %v", dec.Padding)
	}
}

func TestReportSizeMatchesEncoding(t *testing.T) {
	r := sampleReport()
	if r.Size() != len(r.Encode()) {
		t.Fatal("Size() disagrees with len(Encode())")
	}
	// Paper: basic monitoring events are 50-100 bytes of information; a
	// 4-sample report should be in the low hundreds at most.
	if r.Size() > 300 {
		t.Fatalf("3-sample report is %d bytes; expected compact encoding", r.Size())
	}
}

func TestDecodeReportRejectsGarbage(t *testing.T) {
	if _, err := DecodeReport([]byte{1, 2, 3}); err == nil {
		t.Fatal("DecodeReport accepted garbage")
	}
}

func TestDecodeReportRejectsImplausibleCount(t *testing.T) {
	r := &Report{Node: "x", Samples: []Sample{{ID: LOADAVG}}}
	raw := r.Encode()
	// Corrupt the sample-count field (right after node string + seq + time).
	off := 4 + 1 + 8 + 8
	raw[off], raw[off+1], raw[off+2], raw[off+3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeReport(raw); err == nil {
		t.Fatal("DecodeReport accepted implausible sample count")
	}
}

func TestDecodeReportRejectsInvalidID(t *testing.T) {
	r := &Report{Node: "x", Samples: []Sample{{ID: ID(5000)}}}
	if _, err := DecodeReport(r.Encode()); err == nil {
		t.Fatal("DecodeReport accepted out-of-range metric ID")
	}
}

func TestDecodeReportRejectsTrailing(t *testing.T) {
	raw := append(sampleReport().Encode(), 0x00)
	if _, err := DecodeReport(raw); err == nil {
		t.Fatal("DecodeReport accepted trailing bytes")
	}
}

func TestByID(t *testing.T) {
	r := sampleReport()
	s, ok := r.ByID(FREEMEM)
	if !ok || s.Value != 48e6 {
		t.Fatalf("ByID(FREEMEM) = (%+v, %v)", s, ok)
	}
	if _, ok := r.ByID(NETRTT); ok {
		t.Fatal("ByID found a sample that is not in the report")
	}
}

func TestSortSamples(t *testing.T) {
	r := &Report{Samples: []Sample{{ID: CACHE_MISS}, {ID: LOADAVG}, {ID: FREEMEM}}}
	r.SortSamples()
	for i := 1; i < len(r.Samples); i++ {
		if r.Samples[i-1].ID > r.Samples[i].ID {
			t.Fatalf("samples not sorted: %v", r.Samples)
		}
	}
}

// Property: reports with arbitrary values survive an encode/decode round trip.
func TestQuickReportRoundTrip(t *testing.T) {
	f := func(node string, seq uint64, vals []float64, pad []byte) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		ts := time.Unix(0, 1056326400e9).UTC()
		r := &Report{Node: node, Seq: seq, Time: ts, Padding: pad}
		for i, v := range vals {
			r.Samples = append(r.Samples, Sample{ID: ID(i % int(NumIDs)), Value: v, Time: ts})
		}
		dec, err := DecodeReport(r.Encode())
		if err != nil {
			return false
		}
		if dec.Node != node || dec.Seq != seq || len(dec.Samples) != len(r.Samples) {
			return false
		}
		for i := range dec.Samples {
			want := r.Samples[i].Value
			got := dec.Samples[i].Value
			if got != want && !(got != got && want != want) { // NaN-safe compare
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

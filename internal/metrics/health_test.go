package metrics

import (
	"strings"
	"testing"
)

func TestHealthRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("channel", "dproc.monitoring", "peers").Store(2)
	r.Counter("channel", "dproc.monitoring", "reconnects").Store(3)
	r.Counter("channel", "dproc.monitoring", "deadline_drops").Store(1)
	r.Counter("channel", "dproc.monitoring", "queue_drops").Store(4)
	r.Counter("channel", "dproc.monitoring", "batches_sent").Store(7)
	r.Counter("channel", "dproc.control", "peers").Store(2)
	r.Counter("channel", "dproc.control", "reconnects").Store(1)
	r.Counter("channel", "dproc.control", "queue_drops").Store(0)
	r.Counter("registry", "", "dials").Store(1)
	r.Counter("registry", "", "heartbeats").Store(9)
	r.Counter("registry", "", "rejoins").Store(2)
	// Distributions must not leak into the health view.
	r.Distribution("obs", "", "filter_run", "ns", nil)

	h := NewHealth("alan", r)
	out := h.Render()
	for _, want := range []string{
		"node alan\n",
		"channel dproc.monitoring peers 2\n",
		"channel dproc.monitoring reconnects 3\n",
		"channel dproc.monitoring deadline_drops 1\n",
		"channel dproc.monitoring queue_drops 4\n",
		"channel dproc.monitoring batches_sent 7\n",
		"channel dproc.control queue_drops 0\n",
		"channel dproc.control reconnects 1\n",
		"registry heartbeats 9\n",
		"registry rejoins 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "filter_run") {
		t.Fatalf("Render leaked a distribution into the health view:\n%s", out)
	}
	if got := h.TotalReconnects(); got != 4 {
		t.Fatalf("TotalReconnects = %d, want 4", got)
	}
	if got := h.Value("registry", "", "dials"); got != 1 {
		t.Fatalf("Value(registry dials) = %d, want 1", got)
	}
}

func TestHealthNilRegistry(t *testing.T) {
	h := NewHealth("solo", nil)
	if got := h.Render(); got != "node solo\n" {
		t.Fatalf("Render = %q, want node line only", got)
	}
	if h.TotalReconnects() != 0 || h.Value("registry", "", "dials") != 0 {
		t.Fatal("nil-registry health must read zero")
	}
}

package metrics

import (
	"strings"
	"testing"
)

func TestHealthRender(t *testing.T) {
	h := Health{
		Node: "alan",
		Channels: []ChannelHealth{
			{Name: "dproc.monitoring", Peers: 2, Reconnects: 3, DeadlineDrops: 1, QueueDrops: 4, BatchesSent: 7},
			{Name: "dproc.control", Peers: 2, Reconnects: 1},
		},
		Registry: RegistryHealth{Dials: 1, Heartbeats: 9, Rejoins: 2},
	}
	out := h.Render()
	for _, want := range []string{
		"node alan\n",
		"channel dproc.monitoring peers 2\n",
		"channel dproc.monitoring reconnects 3\n",
		"channel dproc.monitoring deadline_drops 1\n",
		"channel dproc.monitoring queue_drops 4\n",
		"channel dproc.monitoring batches_sent 7\n",
		"channel dproc.control queue_drops 0\n",
		"channel dproc.control reconnects 1\n",
		"registry heartbeats 9\n",
		"registry rejoins 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	if got := h.TotalReconnects(); got != 4 {
		t.Fatalf("TotalReconnects = %d, want 4", got)
	}
}

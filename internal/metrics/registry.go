// The unified metric registry: every counter, gauge and latency
// distribution in the node registers here exactly once — kecho channels at
// Join, the registry client at node construction, the observability layer's
// histograms at observer creation — and every export surface (the health
// and stats pseudo-files, the admin "stats" verb, the Prometheus /metrics
// endpoint) renders from the same entries. Adding a counter means one
// Counter call at the owning site, not parallel edits across health
// structs, render functions and exporters.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a registry entry.
type Kind int

const (
	// KindCounter is a monotonically increasing cumulative count backed by
	// an atomic cell the owner increments directly.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value read through a callback.
	KindGauge
	// KindDist is a streaming latency/size distribution (see Distribution).
	KindDist
)

// Distribution is the read surface a streaming histogram exposes to the
// registry: enough to render counts, sums and quantiles without the
// registry knowing the bucket layout. internal/obs provides the canonical
// lock-free implementation.
type Distribution interface {
	Count() uint64
	Sum() uint64
	// Quantile returns an upper bound for the q-quantile of the recorded
	// values (q in [0,1]); 0 when nothing has been recorded.
	Quantile(q float64) int64
}

// Entry is one registered metric, visible to renderers via Each.
type Entry struct {
	// Subsystem groups related metrics ("channel", "registry", "obs").
	Subsystem string
	// Label distinguishes instances within a subsystem (the channel name);
	// empty for singleton subsystems.
	Label string
	// Name is the snake_case metric name within the subsystem.
	Name string
	// Unit is "ns" for durations (exporters scale to seconds), "" for
	// dimensionless counts.
	Unit string
	Kind Kind
	// Value reads the current value of a counter or gauge; nil for KindDist.
	Value func() uint64
	// Dist is the distribution behind a KindDist entry; nil otherwise.
	Dist Distribution

	// cell backs KindCounter entries so repeated registration returns the
	// same atomic.
	cell *atomic.Uint64
}

// Registry holds a node's metric entries in registration order. All methods
// are safe for concurrent use; reads of counter cells are lock-free.
type Registry struct {
	mu      sync.Mutex
	entries []Entry
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

func entryKey(subsystem, label, name string) string {
	return subsystem + "\x00" + label + "\x00" + name
}

// Counter registers a cumulative counter and returns the atomic cell the
// owner increments. Registering the same (subsystem, label, name) again
// returns the existing cell, so a re-joined channel keeps accumulating
// rather than shadowing its counters.
func (r *Registry) Counter(subsystem, label, name string) *atomic.Uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := entryKey(subsystem, label, name)
	if i, ok := r.index[key]; ok {
		if e := r.entries[i]; e.Kind == KindCounter && e.cell != nil {
			return e.cell
		}
	}
	cell := new(atomic.Uint64)
	r.add(key, Entry{Subsystem: subsystem, Label: label, Name: name, Kind: KindCounter, Value: cell.Load, cell: cell})
	return cell
}

// Gauge registers (or replaces) an instantaneous value read through fn.
// Replacement matters on re-registration: the newest owner's closure wins,
// so a restarted component does not leave a stale reader behind.
func (r *Registry) Gauge(subsystem, label, name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := entryKey(subsystem, label, name)
	e := Entry{Subsystem: subsystem, Label: label, Name: name, Kind: KindGauge, Value: fn}
	if i, ok := r.index[key]; ok {
		r.entries[i] = e
		return
	}
	r.add(key, e)
}

// Distribution registers (or replaces) a streaming distribution. unit "ns"
// marks durations, which exporters render in seconds.
func (r *Registry) Distribution(subsystem, label, name, unit string, d Distribution) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := entryKey(subsystem, label, name)
	e := Entry{Subsystem: subsystem, Label: label, Name: name, Unit: unit, Kind: KindDist, Dist: d}
	if i, ok := r.index[key]; ok {
		r.entries[i] = e
		return
	}
	r.add(key, e)
}

// add appends e under key; caller holds r.mu.
func (r *Registry) add(key string, e Entry) {
	r.index[key] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Each calls fn for every entry in registration order, on a snapshot — fn
// may call back into the registry.
func (r *Registry) Each(fn func(Entry)) {
	r.mu.Lock()
	snapshot := make([]Entry, len(r.entries))
	copy(snapshot, r.entries)
	r.mu.Unlock()
	for _, e := range snapshot {
		fn(e)
	}
}

// Value reads one counter or gauge by key, reporting whether it exists.
func (r *Registry) Value(subsystem, label, name string) (uint64, bool) {
	r.mu.Lock()
	i, ok := r.index[entryKey(subsystem, label, name)]
	var e Entry
	if ok {
		e = r.entries[i]
	}
	r.mu.Unlock()
	if !ok || e.Value == nil {
		return 0, false
	}
	return e.Value(), true
}

// RenderText writes every entry in /proc style — "subsystem [label] name
// value" lines; distributions expand to count/sum/p50/p95/p99 with the unit
// suffixed to each value key — the format behind cluster/<node>/stats and
// the admin stats verb.
func (r *Registry) RenderText(w io.Writer) {
	r.Each(func(e Entry) {
		prefix := e.Subsystem
		if e.Label != "" {
			prefix += " " + e.Label
		}
		if e.Kind != KindDist {
			fmt.Fprintf(w, "%s %s %d\n", prefix, e.Name, e.Value())
			return
		}
		suffix := ""
		if e.Unit != "" {
			suffix = "_" + e.Unit
		}
		fmt.Fprintf(w, "%s %s count %d sum%s %d p50%s %d p95%s %d p99%s %d\n",
			prefix, e.Name, e.Dist.Count(), suffix, e.Dist.Sum(),
			suffix, e.Dist.Quantile(0.50), suffix, e.Dist.Quantile(0.95), suffix, e.Dist.Quantile(0.99))
	})
}

// RenderProm writes every entry in the Prometheus text exposition format:
// counters as dproc_<subsystem>_<name>_total, gauges plain, distributions
// as summaries with 0.5/0.95/0.99 quantile lines plus _sum and _count.
// Nanosecond distributions are scaled to base-unit seconds and suffixed
// _seconds, per Prometheus naming conventions.
func (r *Registry) RenderProm(w io.Writer) {
	r.Each(func(e Entry) {
		name := "dproc_" + e.Subsystem + "_" + e.Name
		labels := ""
		if e.Label != "" {
			labels = "{" + e.Subsystem + "=\"" + escapeLabel(e.Label) + "\"}"
		}
		switch e.Kind {
		case KindCounter:
			fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total%s %d\n", name, name, labels, e.Value())
		case KindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", name, name, labels, e.Value())
		case KindDist:
			scale := 1.0
			if e.Unit == "ns" {
				name += "_seconds"
				scale = 1e-9
			}
			fmt.Fprintf(w, "# TYPE %s summary\n", name)
			for _, q := range []float64{0.5, 0.95, 0.99} {
				fmt.Fprintf(w, "%s{%squantile=\"%s\"} %s\n",
					name, promLabelPrefix(e), formatFloat(q),
					formatFloat(float64(e.Dist.Quantile(q))*scale))
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(float64(e.Dist.Sum())*scale))
			fmt.Fprintf(w, "%s_count%s %d\n", name, labels, e.Dist.Count())
		}
	})
}

// promLabelPrefix renders an entry's instance label for inclusion before
// the quantile label ("channel=\"x\"," or empty).
func promLabelPrefix(e Entry) string {
	if e.Label == "" {
		return ""
	}
	return e.Subsystem + "=\"" + escapeLabel(e.Label) + "\","
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Health counters: the degradation-visibility side of the fault model. The
// transport stack (kecho channels, registry client) counts its recovery work
// — reconnects, redials, expired members, deadline drops — and nodes surface
// the aggregate through the /proc/cluster/<node>/health pseudo-file, so an
// operator can cat one file and see how hard the mesh is working to stay
// connected.
//
// The counters themselves live in the node's unified Registry (subsystems
// "channel" and "registry"); Health is a rendering view over it, so the
// health file, the stats file and the Prometheus exporter can never drift
// apart.
package metrics

import (
	"fmt"
	"strings"
)

// Health renders one node's self-healing report from its metric registry.
type Health struct {
	Node string
	reg  *Registry
}

// NewHealth returns the health view for a node's registry.
func NewHealth(node string, reg *Registry) Health {
	return Health{Node: node, reg: reg}
}

// transportEntry selects the transport-liveness subset of the registry:
// channel and registry-client counters/gauges, excluding the observability
// distributions (those belong to the stats file).
func transportEntry(e Entry) bool {
	return e.Kind != KindDist && (e.Subsystem == "channel" || e.Subsystem == "registry")
}

// Render formats the health report in /proc style: one "key value" line per
// counter, channel sections prefixed by the channel name, in registration
// order (monitoring channel first, registry client last).
func (h Health) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "node %s\n", h.Node)
	if h.reg == nil {
		return sb.String()
	}
	h.reg.Each(func(e Entry) {
		if !transportEntry(e) {
			return
		}
		if e.Label != "" {
			fmt.Fprintf(&sb, "%s %s %s %d\n", e.Subsystem, e.Label, e.Name, e.Value())
		} else {
			fmt.Fprintf(&sb, "%s %s %d\n", e.Subsystem, e.Name, e.Value())
		}
	})
	return sb.String()
}

// Value reads one transport counter by key (e.g. ("registry", "", "dials")
// or ("channel", "dproc.monitoring", "reconnects")); 0 when absent.
func (h Health) Value(subsystem, label, name string) uint64 {
	if h.reg == nil {
		return 0
	}
	v, _ := h.reg.Value(subsystem, label, name)
	return v
}

// TotalReconnects sums reconnects across all channels — the headline
// "how often did the mesh have to heal" number.
func (h Health) TotalReconnects() uint64 {
	var n uint64
	if h.reg == nil {
		return 0
	}
	h.reg.Each(func(e Entry) {
		if e.Subsystem == "channel" && e.Name == "reconnects" && e.Value != nil {
			n += e.Value()
		}
	})
	return n
}

// Health counters: the degradation-visibility side of the fault model. The
// transport stack (kecho channels, registry client) counts its recovery work
// — reconnects, redials, expired members, deadline drops — and nodes surface
// the aggregate through the /proc/cluster/<node>/health pseudo-file, so an
// operator can cat one file and see how hard the mesh is working to stay
// connected.
package metrics

import (
	"fmt"
	"strings"
)

// ChannelHealth is one event channel's liveness snapshot.
type ChannelHealth struct {
	// Name is the channel name (e.g. dproc.monitoring).
	Name string
	// Peers is the number of currently connected peers.
	Peers int
	// EventsSent / EventsRecv / Dropped mirror the channel's traffic stats.
	EventsSent uint64
	EventsRecv uint64
	Dropped    uint64
	// JoinSkips counts peers that were unreachable at join time.
	JoinSkips uint64
	// Redials counts dial attempts made by the reconnect supervisor.
	Redials uint64
	// Reconnects counts peer connections the supervisor re-established.
	Reconnects uint64
	// DeadlineDrops counts sends aborted by the per-peer write deadline.
	DeadlineDrops uint64
	// QueueDrops counts events dropped because a peer's outbound queue
	// overflowed (a subscriber stalled longer than the queue absorbs).
	QueueDrops uint64
	// BatchesSent counts coalesced multi-event frames written by the
	// per-peer writers.
	BatchesSent uint64
}

// RegistryHealth is the node's registry-client recovery snapshot.
type RegistryHealth struct {
	// Dials / Redials count connections established to the registry (total
	// and beyond the first).
	Dials   uint64
	Redials uint64
	// Retries counts request attempts beyond each request's first.
	Retries uint64
	// Heartbeats counts acknowledged keep-alives.
	Heartbeats uint64
	// Rejoins counts heartbeats that had to re-register a member, i.e.
	// observed registry restarts or TTL expiries of this node.
	Rejoins uint64
}

// Health is one node's full self-healing report.
type Health struct {
	Node     string
	Channels []ChannelHealth
	Registry RegistryHealth
}

// Render formats the health report in /proc style: one "key value" line per
// counter, channel sections prefixed by the channel name.
func (h *Health) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "node %s\n", h.Node)
	for _, ch := range h.Channels {
		fmt.Fprintf(&sb, "channel %s peers %d\n", ch.Name, ch.Peers)
		fmt.Fprintf(&sb, "channel %s events_sent %d\n", ch.Name, ch.EventsSent)
		fmt.Fprintf(&sb, "channel %s events_recv %d\n", ch.Name, ch.EventsRecv)
		fmt.Fprintf(&sb, "channel %s dropped %d\n", ch.Name, ch.Dropped)
		fmt.Fprintf(&sb, "channel %s join_skips %d\n", ch.Name, ch.JoinSkips)
		fmt.Fprintf(&sb, "channel %s redials %d\n", ch.Name, ch.Redials)
		fmt.Fprintf(&sb, "channel %s reconnects %d\n", ch.Name, ch.Reconnects)
		fmt.Fprintf(&sb, "channel %s deadline_drops %d\n", ch.Name, ch.DeadlineDrops)
		fmt.Fprintf(&sb, "channel %s queue_drops %d\n", ch.Name, ch.QueueDrops)
		fmt.Fprintf(&sb, "channel %s batches_sent %d\n", ch.Name, ch.BatchesSent)
	}
	fmt.Fprintf(&sb, "registry dials %d\n", h.Registry.Dials)
	fmt.Fprintf(&sb, "registry redials %d\n", h.Registry.Redials)
	fmt.Fprintf(&sb, "registry retries %d\n", h.Registry.Retries)
	fmt.Fprintf(&sb, "registry heartbeats %d\n", h.Registry.Heartbeats)
	fmt.Fprintf(&sb, "registry rejoins %d\n", h.Registry.Rejoins)
	return sb.String()
}

// TotalReconnects sums reconnects across all channels — the headline
// "how often did the mesh have to heal" number.
func (h *Health) TotalReconnects() uint64 {
	var n uint64
	for _, ch := range h.Channels {
		n += ch.Reconnects
	}
	return n
}

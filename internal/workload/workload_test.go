package workload

import (
	"math"
	"testing"
	"time"
)

func TestFlopsFormula(t *testing.T) {
	// 2/3 n^3 + 2 n^2 at n=100: 666666.67 + 20000
	got := Flops(100)
	want := 2.0/3.0*1e6 + 2e4
	if math.Abs(got-want) > 1 {
		t.Fatalf("Flops(100) = %g, want %g", got, want)
	}
}

func TestLinpackSolvesAccurately(t *testing.T) {
	res, err := Linpack(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 100 {
		t.Fatalf("N = %d", res.N)
	}
	if res.Mflops <= 0 {
		t.Fatalf("Mflops = %g", res.Mflops)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("Elapsed = %v", res.Elapsed)
	}
	// A healthy solve has a normalized residual of O(1); allow slack.
	if res.Residual > 100 {
		t.Fatalf("Residual = %g, solver is numerically wrong", res.Residual)
	}
}

func TestLinpackDeterministicProblem(t *testing.T) {
	r1, err := Linpack(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Linpack(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same matrix → same residual (timing differs).
	if r1.Residual != r2.Residual {
		t.Fatalf("residuals differ for identical problems: %g vs %g", r1.Residual, r2.Residual)
	}
}

func TestLinpackSizeValidation(t *testing.T) {
	if _, err := Linpack(1, 0); err == nil {
		t.Fatal("size 1 accepted")
	}
	if _, err := Linpack(0, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestLinpackVariousSizes(t *testing.T) {
	for _, n := range []int{2, 3, 10, 64} {
		res, err := Linpack(n, int64(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Residual > 1000 {
			t.Fatalf("n=%d: residual %g", n, res.Residual)
		}
	}
}

func TestLUFactorSingularMatrix(t *testing.T) {
	n := 3
	a := make([]float64, n*n) // all zeros: singular
	if _, err := luFactor(a, n); err == nil {
		t.Fatal("singular matrix factored without error")
	}
}

func TestLUKnownSystem(t *testing.T) {
	// A = [[2,1],[1,3]], b = [3,5] → x = [0.8, 1.4]
	a := []float64{2, 1, 1, 3}
	piv, err := luFactor(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{3, 5}
	luSolve(a, 2, piv, x)
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Fatalf("x = %v, want [0.8 1.4]", x)
	}
}

func TestSpinnerRunsAndStops(t *testing.T) {
	s := StartSpinner(32)
	time.Sleep(50 * time.Millisecond)
	s.Stop()
	if s.Iterations == 0 {
		t.Fatal("spinner completed no iterations in 50ms at n=32")
	}
}

func TestUDPSinkAndGen(t *testing.T) {
	sink, err := NewUDPSink()
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	gen, err := StartUDPGen(sink.Addr(), 8e6, 1000) // 8 Mbps = 1 MB/s
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	gen.Stop()
	time.Sleep(30 * time.Millisecond)
	if sink.Packets() == 0 {
		t.Fatal("sink received no packets")
	}
	// Loopback should deliver nearly everything: expect at least half the
	// target volume (pacing granularity and scheduling slack allowed).
	want := uint64(8e6 / 8 * 0.2) // bytes in 200 ms at target rate
	if sink.Bytes() < want/2 {
		t.Fatalf("sink received %d bytes, want >= %d", sink.Bytes(), want/2)
	}
	if gen.BytesSent() < sink.Bytes() {
		t.Fatalf("sent %d < received %d", gen.BytesSent(), sink.Bytes())
	}
}

func TestUDPGenValidation(t *testing.T) {
	if _, err := StartUDPGen("127.0.0.1:9", 0, 1000); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := StartUDPGen("not an address", 1e6, 1000); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestUDPGenPacketSizeDefaulting(t *testing.T) {
	sink, err := NewUDPSink()
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	gen, err := StartUDPGen(sink.Addr(), 1e6, -5)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	gen.Stop()
}

func TestMeasureUDPThroughput(t *testing.T) {
	bps, err := MeasureUDPThroughput(4e6, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if bps <= 0 {
		t.Fatalf("throughput = %g", bps)
	}
	// Should be within a generous factor of the 4 Mbps target on loopback.
	if bps < 1e6 || bps > 16e6 {
		t.Logf("throughput %g bps outside expected band (loopback jitter)", bps)
	}
}

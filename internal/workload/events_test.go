package workload

import (
	"testing"
	"time"

	"dproc/internal/clock"
)

func TestEventGenSteadyRate(t *testing.T) {
	start := clock.Epoch
	g := NewEventGen(EventProfile{Rate: 3, Payload: 100}, 1, start)
	now := start
	total := 0
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		total += len(g.Tick(now, time.Second))
	}
	if total != 30 {
		t.Fatalf("10s at 3/s produced %d events, want 30", total)
	}
	events, bytes := g.Totals()
	if events != 30 || bytes != 3000 {
		t.Fatalf("Totals = %d events, %d bytes", events, bytes)
	}
}

func TestEventGenFractionalCarry(t *testing.T) {
	start := clock.Epoch
	g := NewEventGen(EventProfile{Rate: 0.25, Payload: 10}, 1, start)
	now := start
	total := 0
	for i := 0; i < 40; i++ {
		now = now.Add(time.Second)
		total += len(g.Tick(now, time.Second))
	}
	// 40s at 0.25/s — the fractional carry must converge on the exact rate.
	if total != 10 {
		t.Fatalf("carry drifted: %d events, want 10", total)
	}
}

func TestEventGenBursts(t *testing.T) {
	start := clock.Epoch
	p := EventProfile{Rate: 2, Payload: 10, BurstEvery: 10 * time.Second, BurstLen: 2 * time.Second, BurstFactor: 5}
	g := NewEventGen(p, 1, start)
	now := start
	perTick := make([]int, 10)
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		perTick[i] = len(g.Tick(now, time.Second))
	}
	// Ticks 1-2 cover the burst window (rate 10), the rest run at rate 2.
	if perTick[0] != 10 || perTick[1] != 10 {
		t.Fatalf("burst ticks: %v", perTick)
	}
	if perTick[5] != 2 {
		t.Fatalf("steady tick: %v", perTick)
	}
}

func TestEventGenDeterministicJitter(t *testing.T) {
	start := clock.Epoch
	p := EventProfile{Rate: 5, Payload: 100, PayloadJitter: 0.5}
	run := func(seed int64) []int {
		g := NewEventGen(p, seed, start)
		now := start
		var sizes []int
		for i := 0; i < 5; i++ {
			now = now.Add(time.Second)
			sizes = append(sizes, append([]int(nil), g.Tick(now, time.Second)...)...)
		}
		return sizes
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 50 || a[i] > 150 {
			t.Fatalf("jitter out of ±50%% range: %d", a[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical payload streams")
	}
}

func TestEventGenZeroRate(t *testing.T) {
	g := NewEventGen(EventProfile{Rate: 0, Payload: 10}, 1, clock.Epoch)
	if got := g.Tick(clock.Epoch.Add(time.Second), time.Second); len(got) != 0 {
		t.Fatalf("zero rate emitted %d events", len(got))
	}
}

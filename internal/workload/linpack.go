// Package workload implements the two load generators the paper's
// evaluation leans on: linpack (a dense LU solve measuring floating-point
// throughput in Mflops, used to load CPUs and to observe CPU perturbation)
// and an Iperf-style UDP traffic generator (used to perturb the network).
// Both are real implementations — the linpack solver factors an actual
// matrix and verifies its residual — so live-mode experiments exercise real
// CPU and network paths; the simulated experiments inject equivalent load
// into internal/simres hosts instead.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dproc/internal/clock"
)

// LinpackResult reports one linpack run.
type LinpackResult struct {
	// N is the problem size (N x N matrix).
	N int
	// Mflops is the measured floating-point rate over the factor+solve.
	Mflops float64
	// Elapsed is the wall time of the numeric kernel.
	Elapsed time.Duration
	// Residual is the normalized backward error; ~O(1) for a healthy solve.
	Residual float64
}

// Flops returns the standard linpack operation count for size n:
// 2/3·n³ + 2·n².
func Flops(n int) float64 { return 2.0/3.0*float64(n)*float64(n)*float64(n) + 2*float64(n)*float64(n) }

// Linpack generates a random n×n system Ax = b, factors A with partial
// pivoting, solves for x, and reports the measured Mflops and the
// normalized residual. It times the kernel on the wall clock; simulations
// that need deterministic results use LinpackWith and a virtual clock.
func Linpack(n int, seed int64) (*LinpackResult, error) {
	return LinpackWith(n, seed, nil)
}

// LinpackWith is Linpack timed on an explicit clock (nil selects the real
// one). The numeric work — matrix, factorization, solution, residual — is a
// pure function of (n, seed) either way; only Elapsed and Mflops depend on
// the clock. Under a virtual clock that doesn't advance, Elapsed is 0 and
// Mflops reports 0 rather than a wall-time-dependent rate, so two simulated
// runs of the same scenario produce byte-identical results.
func LinpackWith(n int, seed int64, clk clock.Clock) (*LinpackResult, error) {
	if n < 2 {
		return nil, errors.New("workload: linpack size must be >= 2")
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	aCopy := make([]float64, n*n)
	b := make([]float64, n)
	bCopy := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64() - 0.5
	}
	for i := range b {
		b[i] = rng.Float64() - 0.5
	}
	copy(aCopy, a)
	copy(bCopy, b)

	start := clk.Now()
	piv, err := luFactor(a, n)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	copy(x, b)
	luSolve(a, n, piv, x)
	elapsed := clk.Now().Sub(start)

	res := residual(aCopy, bCopy, x, n)
	mflops := 0.0
	if elapsed > 0 {
		mflops = Flops(n) / elapsed.Seconds() / 1e6
	}
	return &LinpackResult{N: n, Mflops: mflops, Elapsed: elapsed, Residual: res}, nil
}

// luFactor performs in-place LU factorization with partial pivoting on the
// row-major n×n matrix a, returning the pivot indices.
func luFactor(a []float64, n int) ([]int, error) {
	piv := make([]int, n)
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		max := math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > max {
				max, p = v, i
			}
		}
		piv[k] = p
		if max == 0 {
			return nil, fmt.Errorf("workload: singular matrix at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
		}
		inv := 1 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			m := a[i*n+k] * inv
			a[i*n+k] = m
			row := a[i*n : i*n+n]
			krow := a[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				row[j] -= m * krow[j]
			}
		}
	}
	return piv, nil
}

// luSolve solves LUx = b in place given the factorization and pivots. The
// factorization swaps whole rows (LAPACK getrf style), so all pivots apply
// to b before the triangular solves.
func luSolve(a []float64, n int, piv []int, b []float64) {
	for k := 0; k < n; k++ {
		if p := piv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	// Forward-substitute L (unit diagonal).
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			b[i] -= a[i*n+k] * b[k]
		}
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i*n+j] * b[j]
		}
		b[i] = sum / a[i*n+i]
	}
}

// residual computes ||Ax - b||_inf / (||A||_inf · ||x||_inf · n · eps), the
// standard linpack backward-error check.
func residual(a, b, x []float64, n int) float64 {
	normA, normX, normR := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		rowSum := 0.0
		ax := 0.0
		for j := 0; j < n; j++ {
			rowSum += math.Abs(a[i*n+j])
			ax += a[i*n+j] * x[j]
		}
		if rowSum > normA {
			normA = rowSum
		}
		if v := math.Abs(x[i]); v > normX {
			normX = v
		}
		if v := math.Abs(ax - b[i]); v > normR {
			normR = v
		}
	}
	denom := normA * normX * float64(n) * 2.220446049250313e-16
	if denom == 0 {
		return 0
	}
	return normR / denom
}

// Spinner is a continuous CPU load generator: it runs repeated linpack
// factorizations until stopped, mirroring the paper's "running different
// instances of linpack processes" to vary client load.
type Spinner struct {
	stop chan struct{}
	done chan struct{}
	// Iterations counts completed solves (read after Stop).
	Iterations int
}

// StartSpinner launches a goroutine solving size-n systems back to back.
func StartSpinner(n int) *Spinner {
	s := &Spinner{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		seed := int64(1)
		for {
			select {
			case <-s.stop:
				return
			default:
			}
			if _, err := Linpack(n, seed); err != nil {
				return
			}
			s.Iterations++
			seed++
		}
	}()
	return s
}

// Stop terminates the spinner and waits for it to exit.
func (s *Spinner) Stop() {
	close(s.stop)
	<-s.done
}

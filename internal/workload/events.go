package workload

import (
	"math/rand"
	"time"
)

// EventProfile describes a deterministic synthetic event load: a steady
// per-generator rate of fixed-size events, optional seeded payload jitter,
// and an optional periodic burst schedule. It is the scenario harness's
// load knob — every rate in a runfile's [load] section maps onto one of
// these fields.
type EventProfile struct {
	// Rate is the steady event rate in events/second. Zero disables the
	// generator (Tick always returns nothing).
	Rate float64
	// Payload is the nominal event payload in bytes.
	Payload int
	// PayloadJitter varies each event's payload by ±(jitter · Payload),
	// drawn from the generator's seeded stream. Zero emits exact sizes.
	PayloadJitter float64
	// BurstEvery starts a burst window every interval (measured from the
	// generator's start time). Zero disables bursts.
	BurstEvery time.Duration
	// BurstLen is how long each burst window lasts.
	BurstLen time.Duration
	// BurstFactor multiplies Rate inside a burst window.
	BurstFactor float64
}

// EventGen deterministically converts elapsed (virtual or real) time into a
// sequence of event payload sizes. Two generators built from the same
// profile, seed and start time produce byte-identical sequences for the
// same Tick call pattern — the property the scenario harness's
// reproducibility guarantee rests on. Not safe for concurrent use; each
// simulated publisher owns one.
type EventGen struct {
	p     EventProfile
	rng   *rand.Rand
	start time.Time
	carry float64
	buf   []int

	events uint64
	bytes  uint64
}

// NewEventGen builds a generator for the profile whose randomness (payload
// jitter) is drawn from seed. start anchors the burst schedule; pass the
// clock's current time.
func NewEventGen(p EventProfile, seed int64, start time.Time) *EventGen {
	if p.BurstFactor <= 0 {
		p.BurstFactor = 1
	}
	if p.Payload < 0 {
		p.Payload = 0
	}
	return &EventGen{p: p, rng: rand.New(rand.NewSource(seed)), start: start}
}

// rateAt returns the effective rate at instant t, honoring the burst
// schedule.
func (g *EventGen) rateAt(t time.Time) float64 {
	r := g.p.Rate
	if r <= 0 {
		return 0
	}
	if g.p.BurstEvery > 0 && g.p.BurstLen > 0 {
		phase := t.Sub(g.start) % g.p.BurstEvery
		if phase < 0 {
			phase += g.p.BurstEvery
		}
		if phase < g.p.BurstLen {
			r *= g.p.BurstFactor
		}
	}
	return r
}

// Tick returns the payload sizes of the events due in the dt window ending
// at now. Fractional events carry over to the next tick, so long runs
// converge on the exact configured rate. The returned slice is reused by
// the next Tick call; consume it before calling again.
func (g *EventGen) Tick(now time.Time, dt time.Duration) []int {
	if dt <= 0 {
		return nil
	}
	// Rate is sampled at the window start so a burst boundary lands on a
	// whole tick — deterministic regardless of tick size.
	due := g.carry + g.rateAt(now.Add(-dt))*dt.Seconds()
	n := int(due)
	g.carry = due - float64(n)
	if n == 0 {
		return nil
	}
	g.buf = g.buf[:0]
	for i := 0; i < n; i++ {
		size := g.p.Payload
		if g.p.PayloadJitter > 0 && size > 0 {
			size = int(float64(size) * (1 + g.p.PayloadJitter*(2*g.rng.Float64()-1)))
			if size < 1 {
				size = 1
			}
		}
		g.buf = append(g.buf, size)
		g.events++
		g.bytes += uint64(size)
	}
	return g.buf
}

// Totals reports the cumulative events and payload bytes generated.
func (g *EventGen) Totals() (events, bytes uint64) { return g.events, g.bytes }

package workload

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// UDPSink receives UDP datagrams and counts bytes, playing the role of the
// Iperf server in the paper's network perturbation experiments.
type UDPSink struct {
	conn  *net.UDPConn
	bytes atomic.Uint64
	pkts  atomic.Uint64
	done  chan struct{}
}

// NewUDPSink starts a sink on an ephemeral local port.
func NewUDPSink() (*UDPSink, error) {
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("workload: udp sink: %w", err)
	}
	s := &UDPSink{conn: conn, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		buf := make([]byte, 65536)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			s.bytes.Add(uint64(n))
			s.pkts.Add(1)
		}
	}()
	return s, nil
}

// Addr returns the sink's address for senders to target.
func (s *UDPSink) Addr() string { return s.conn.LocalAddr().String() }

// Bytes returns the total bytes received.
func (s *UDPSink) Bytes() uint64 { return s.bytes.Load() }

// Packets returns the total datagrams received.
func (s *UDPSink) Packets() uint64 { return s.pkts.Load() }

// Close shuts the sink down.
func (s *UDPSink) Close() error {
	err := s.conn.Close()
	<-s.done
	return err
}

// UDPGen sends UDP datagrams toward a sink at a target bit rate, the
// equivalent of "iperf -u -b <rate>".
type UDPGen struct {
	stop chan struct{}
	done chan struct{}
	sent atomic.Uint64
}

// StartUDPGen begins sending packetSize-byte datagrams to addr at
// targetBps, paced in 10 ms bursts.
func StartUDPGen(addr string, targetBps float64, packetSize int) (*UDPGen, error) {
	if packetSize <= 0 || packetSize > 65000 {
		packetSize = 1400
	}
	if targetBps <= 0 {
		return nil, fmt.Errorf("workload: target rate must be positive")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	g := &UDPGen{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(g.done)
		defer conn.Close()
		payload := make([]byte, packetSize)
		const tick = 10 * time.Millisecond
		bytesPerTick := targetBps / 8 * tick.Seconds()
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		carry := 0.0
		for {
			select {
			case <-g.stop:
				return
			case <-ticker.C:
				carry += bytesPerTick
				for carry >= float64(packetSize) {
					if _, err := conn.Write(payload); err != nil {
						return
					}
					g.sent.Add(uint64(packetSize))
					carry -= float64(packetSize)
				}
			}
		}
	}()
	return g, nil
}

// BytesSent returns the total bytes emitted so far.
func (g *UDPGen) BytesSent() uint64 { return g.sent.Load() }

// Stop halts the generator and waits for its goroutine.
func (g *UDPGen) Stop() {
	close(g.stop)
	<-g.done
}

// MeasureUDPThroughput runs a sender against a fresh sink for the given
// duration and returns the achieved receive rate in bits/second — the
// "available bandwidth" probe used by the Figure 5 network perturbation
// analysis.
func MeasureUDPThroughput(targetBps float64, duration time.Duration) (float64, error) {
	sink, err := NewUDPSink()
	if err != nil {
		return 0, err
	}
	defer sink.Close()
	gen, err := StartUDPGen(sink.Addr(), targetBps, 1400)
	if err != nil {
		return 0, err
	}
	time.Sleep(duration)
	gen.Stop()
	// Allow in-flight datagrams to land.
	time.Sleep(20 * time.Millisecond)
	return float64(sink.Bytes()) * 8 / duration.Seconds(), nil
}

package simres

import (
	"math"
	"testing"
	"time"

	"dproc/internal/clock"
	"dproc/internal/metrics"
	"dproc/internal/netsim"
)

func newHost(t *testing.T) *Host {
	t.Helper()
	h := NewHost("alan", clock.NewVirtual(clock.Epoch), 1)
	h.SetNoise(0) // deterministic values for exact assertions
	return h
}

func TestIdleHostDefaults(t *testing.T) {
	h := newHost(t)
	if h.LoadAvg() != 0 {
		t.Fatalf("idle LoadAvg = %g", h.LoadAvg())
	}
	if h.MemTotal() != 512<<20 {
		t.Fatalf("MemTotal = %d, want 512MB (paper testbed)", h.MemTotal())
	}
	if h.FreeMem() != 512<<20-96<<20 {
		t.Fatalf("FreeMem = %d", h.FreeMem())
	}
	if h.CPUShare() != 1 {
		t.Fatalf("idle CPUShare = %g, want 1", h.CPUShare())
	}
}

func TestTasksRaiseLoadAndLowerShare(t *testing.T) {
	h := newHost(t)
	id1 := h.AddTask(1)
	id2 := h.AddTask(1)
	if h.LoadAvg() != 2 {
		t.Fatalf("LoadAvg with 2 tasks = %g", h.LoadAvg())
	}
	if got := h.CPUShare(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("CPUShare = %g, want 1/3", got)
	}
	if h.TaskCount() != 2 {
		t.Fatalf("TaskCount = %d", h.TaskCount())
	}
	h.RemoveTask(id1)
	h.RemoveTask(id2)
	h.RemoveTask(999) // unknown id ignored
	if h.LoadAvg() != 0 || h.TaskCount() != 0 {
		t.Fatal("tasks not removed")
	}
}

func TestMflopsDegradeWithLoad(t *testing.T) {
	h := newHost(t)
	idle := h.Mflops()
	if math.Abs(idle-17.4) > 0.01 {
		t.Fatalf("idle Mflops = %g, want ~17.4 (paper Figure 4)", idle)
	}
	h.AddTask(1)
	loaded := h.Mflops()
	if loaded >= idle {
		t.Fatalf("Mflops did not degrade: %g vs %g", loaded, idle)
	}
	if math.Abs(loaded-idle/2) > 0.01 {
		t.Fatalf("one competing task should halve throughput: %g vs idle %g", loaded, idle)
	}
}

func TestMonitorCostReducesMflops(t *testing.T) {
	h := newHost(t)
	idle := h.Mflops()
	h.SetMonitorCost(0.01)
	withMon := h.Mflops()
	if withMon >= idle {
		t.Fatalf("monitoring cost did not reduce Mflops: %g vs %g", withMon, idle)
	}
	if withMon < idle*0.98 {
		t.Fatalf("1%% monitor cost cut Mflops too much: %g vs %g", withMon, idle)
	}
	h.SetMonitorCost(-1)
	if h.Mflops() != idle {
		t.Fatal("negative monitor cost not clamped to 0")
	}
}

func TestMemoryModel(t *testing.T) {
	h := newHost(t)
	free0 := h.FreeMem()
	h.AddTask(1)
	free1 := h.FreeMem()
	if free0-free1 != DefaultMemPerTask {
		t.Fatalf("task memory delta = %d, want %d", free0-free1, uint64(DefaultMemPerTask))
	}
	h.SetMemExtra(100 << 20)
	free2 := h.FreeMem()
	if free1-free2 != 100<<20 {
		t.Fatalf("extra mem delta = %d", free1-free2)
	}
	// Overcommit clamps to zero.
	h.SetMemExtra(1 << 40)
	if h.FreeMem() != 0 {
		t.Fatalf("overcommitted FreeMem = %d, want 0", h.FreeMem())
	}
}

func TestDiskModel(t *testing.T) {
	h := newHost(t)
	base := h.DiskUsage()
	h.SetDiskActivity(10000)
	if got := h.DiskUsage(); got != base+10000 {
		t.Fatalf("DiskUsage = %g, want %g", got, base+10000)
	}
	h.SetDiskActivity(-5)
	if h.DiskUsage() != base {
		t.Fatal("negative disk activity not clamped")
	}
}

func TestCacheMissScalesWithLoad(t *testing.T) {
	h := newHost(t)
	idle := h.CacheMissRate()
	h.AddTask(2)
	if got := h.CacheMissRate(); got <= idle {
		t.Fatalf("cache misses did not rise with load: %g vs %g", got, idle)
	}
}

func TestSampleCoversEveryMetric(t *testing.T) {
	h := newHost(t)
	h.AddTask(1)
	h.SetDiskActivity(8000)
	for _, id := range metrics.AllIDs() {
		v := h.Sample(id)
		if v < 0 {
			t.Errorf("Sample(%v) = %g, want >= 0", id, v)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Sample(%v) = %g", id, v)
		}
	}
	// Spot checks.
	if h.Sample(metrics.LOADAVG) != 1 {
		t.Errorf("LOADAVG = %g", h.Sample(metrics.LOADAVG))
	}
	if h.Sample(metrics.DISKUSAGE) != 8050 {
		t.Errorf("DISKUSAGE = %g", h.Sample(metrics.DISKUSAGE))
	}
	if got := h.Sample(metrics.SECTORSREAD) + h.Sample(metrics.SECTORSWRITTEN); math.Abs(got-8050) > 1e-9 {
		t.Errorf("sector split does not sum to DISKUSAGE: %g", got)
	}
	if h.Sample(metrics.TOTALMEM) != float64(512<<20) {
		t.Errorf("TOTALMEM = %g", h.Sample(metrics.TOTALMEM))
	}
	if h.Sample(metrics.ID(9999)) != 0 {
		t.Error("unknown metric id should sample as 0")
	}
}

func TestNetworkMetricsReflectLink(t *testing.T) {
	h := newHost(t)
	h.Link().SetPerturbation(netsim.Mbps(40))
	if got := h.Sample(metrics.NETAVAIL); got != 60e6 {
		t.Fatalf("NETAVAIL = %g, want 60e6", got)
	}
	rttIdle := h.Sample(metrics.NETRTT)
	h.Link().SetPerturbation(netsim.Mbps(95))
	if got := h.Sample(metrics.NETRTT); got <= rttIdle {
		t.Fatalf("NETRTT did not rise with perturbation: %g vs %g", got, rttIdle)
	}
	if h.Sample(metrics.NETLOST) <= 0 {
		t.Fatal("NETLOST zero at 95% utilization")
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	h1 := NewHost("a", clk, 7)
	h2 := NewHost("a", clk, 7)
	h1.AddTask(1)
	h2.AddTask(1)
	for i := 0; i < 10; i++ {
		if h1.LoadAvg() != h2.LoadAvg() {
			t.Fatal("same seed produced different jitter streams")
		}
	}
	h3 := NewHost("a", clk, 8)
	h3.AddTask(1)
	same := true
	for i := 0; i < 10; i++ {
		if h1.LoadAvg() != h3.LoadAvg() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestNoiseBounds(t *testing.T) {
	h := NewHost("a", clock.NewVirtual(clock.Epoch), 3)
	h.SetNoise(0.02)
	h.AddTask(4) // true load 4.0
	for i := 0; i < 100; i++ {
		v := h.LoadAvg()
		if v < 4*0.98 || v > 4*1.02 {
			t.Fatalf("jittered load %g outside ±2%%", v)
		}
	}
}

func TestCPUShareFloor(t *testing.T) {
	h := newHost(t)
	for i := 0; i < 500; i++ {
		h.AddTask(1)
	}
	if got := h.CPUShare(); got != 0.01 {
		t.Fatalf("CPUShare floor = %g, want 0.01", got)
	}
}

func TestBatteryModel(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	h := NewHost("ipaq", clk, 1)
	h.SetNoise(0)
	// Mains-powered: always 100%, zero draw.
	if h.Battery() != 100 {
		t.Fatalf("mains battery = %g", h.Battery())
	}
	if h.PowerDraw() != 0 {
		t.Fatalf("mains draw = %g", h.PowerDraw())
	}
	h.EnableBattery(20, 2, 1) // 20 Wh, 2 W idle, +1 W per load
	if h.Battery() != 100 {
		t.Fatalf("fresh battery = %g", h.Battery())
	}
	if h.PowerDraw() != 2 {
		t.Fatalf("idle draw = %g", h.PowerDraw())
	}
	// One hour idle: 2 Wh of 20 Wh = 10%.
	clk.Advance(time.Hour)
	if got := h.Battery(); math.Abs(got-90) > 0.01 {
		t.Fatalf("battery after 1h idle = %g, want 90", got)
	}
	// Load raises the draw; four more hours at 6 W = 24 Wh → clamped to 0.
	h.AddTask(4)
	if h.PowerDraw() != 6 {
		t.Fatalf("loaded draw = %g", h.PowerDraw())
	}
	clk.Advance(4 * time.Hour)
	if got := h.Battery(); got != 0 {
		t.Fatalf("exhausted battery = %g, want 0", got)
	}
	if h.Sample(metrics.BATTERY) != 0 || h.Sample(metrics.POWERDRAW) != 6 {
		t.Fatal("power metrics not sampled")
	}
}

func TestSetBaseLoad(t *testing.T) {
	h := newHost(t)
	h.SetBaseLoad(1.5)
	if h.LoadAvg() != 1.5 {
		t.Fatalf("LoadAvg = %g", h.LoadAvg())
	}
	h.AddTask(1)
	if h.LoadAvg() != 2.5 {
		t.Fatalf("LoadAvg with task = %g", h.LoadAvg())
	}
}

func TestHostString(t *testing.T) {
	h := newHost(t)
	s := h.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String = %q", s)
	}
}

func TestCluster(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	c := NewCluster(8, clk, 100)
	if c.Size() != 8 {
		t.Fatalf("Size = %d", c.Size())
	}
	names := map[string]bool{}
	for i := 0; i < c.Size(); i++ {
		names[c.Host(i).Name()] = true
	}
	if len(names) != 8 || !names["node0"] || !names["node7"] {
		t.Fatalf("names = %v", names)
	}
}

// Package simres provides deterministic synthetic host resource models for
// the reproduction's experiments. The paper measures an 8-node cluster of
// quad Pentium Pro 200 MHz machines with 512 MB RAM on 100 Mbps Ethernet;
// since that hardware (and kernel instrumentation) is unavailable, each
// simulated Host exposes the same observables dproc's kernel modules
// capture — run-queue length, free memory, disk sector rates, network
// bandwidth/RTT/loss, and PMC cache-miss counters — driven by injectable
// workloads (linpack threads, disk activity, stream traffic) and a seeded
// noise source so experiments are reproducible bit-for-bit.
package simres

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"dproc/internal/clock"
	"dproc/internal/metrics"
	"dproc/internal/netsim"
)

// Defaults matching the paper's testbed nodes.
const (
	// DefaultMemTotal is 512 MB, the paper's node RAM.
	DefaultMemTotal = 512 << 20
	// DefaultMemBase is the memory used by an idle node.
	DefaultMemBase = 96 << 20
	// DefaultMemPerTask is the working set each injected task consumes.
	DefaultMemPerTask = 24 << 20
	// baselineMflops approximates one Pentium Pro 200 MHz core running
	// linpack (the paper's Figure 4 measures ~17.4 Mflops).
	baselineMflops = 17.4
)

// Host is one simulated cluster node. All methods are safe for concurrent
// use.
type Host struct {
	name string
	clk  clock.Clock
	link *netsim.Link

	mu           sync.Mutex
	rng          *rand.Rand
	noise        float64 // relative noise amplitude, e.g. 0.02
	baseLoad     float64
	nextTaskID   int
	tasks        map[int]float64 // task id -> run-queue contribution
	memTotal     uint64
	memBase      uint64
	memPerTask   uint64
	memExtra     uint64  // extra allocation set by the application model
	diskBase     float64 // idle sectors/s
	diskExtra    float64 // workload-driven sectors/s
	pmcBasePerS  float64 // idle cache misses/s
	monitorCost  float64 // CPU fraction consumed by monitoring itself

	// Battery model (mobile hosts): percentage remaining, drained over
	// simulated time by a load-dependent power draw.
	batteryPct   float64
	batteryWh    float64 // capacity; <= 0 means mains-powered
	idleWatts    float64
	wattsPerLoad float64
	lastDrain    time.Time
}

// NewHost creates a simulated node with the paper's defaults. seed controls
// the deterministic noise stream.
func NewHost(name string, clk clock.Clock, seed int64) *Host {
	return &Host{
		name:        name,
		clk:         clk,
		link:        netsim.NewLink(clk, 0),
		rng:         rand.New(rand.NewSource(seed)),
		noise:       0.02,
		tasks:       map[int]float64{},
		memTotal:    DefaultMemTotal,
		memBase:     DefaultMemBase,
		memPerTask:  DefaultMemPerTask,
		diskBase:    50,
		pmcBasePerS: 2e5,
	}
}

// Name returns the node name.
func (h *Host) Name() string { return h.name }

// Link returns the host's network link model.
func (h *Host) Link() *netsim.Link { return h.link }

// SetNoise sets the relative noise amplitude (0 disables jitter entirely).
func (h *Host) SetNoise(amp float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.noise = amp
}

// jitterLocked multiplies v by (1 ± noise), deterministically.
func (h *Host) jitterLocked(v float64) float64 {
	if h.noise == 0 {
		return v
	}
	return v * (1 + h.noise*(2*h.rng.Float64()-1))
}

// AddTask injects a CPU-bound task (e.g. one linpack thread) contributing
// `load` to the run queue; returns a handle for RemoveTask.
func (h *Host) AddTask(load float64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.nextTaskID
	h.nextTaskID++
	h.tasks[id] = load
	return id
}

// RemoveTask removes a previously injected task; unknown IDs are ignored.
func (h *Host) RemoveTask(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.tasks, id)
}

// TaskCount returns the number of injected tasks.
func (h *Host) TaskCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.tasks)
}

// SetBaseLoad sets the idle run-queue length (background daemons).
func (h *Host) SetBaseLoad(load float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.baseLoad = load
}

// SetMonitorCost sets the CPU fraction consumed by monitoring activity on
// this host (used by the Figure 4 perturbation model).
func (h *Host) SetMonitorCost(frac float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if frac < 0 {
		frac = 0
	}
	h.monitorCost = frac
}

func (h *Host) loadLocked() float64 {
	load := h.baseLoad
	for _, l := range h.tasks {
		load += l
	}
	return load
}

// LoadAvg returns the current run-queue length (with jitter).
func (h *Host) LoadAvg() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.jitterLocked(h.loadLocked())
}

// CPUShare returns the CPU fraction available to one additional
// compute-bound process: a processor-sharing model where the new process
// competes with the current run queue, less the monitoring overhead.
func (h *Host) CPUShare() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	share := (1 - h.monitorCost) / (1 + h.loadLocked())
	if share < 0.01 {
		share = 0.01
	}
	return share
}

// Mflops returns the linpack throughput a benchmark process would measure
// on this host right now: the baseline scaled by the available CPU share
// relative to an idle machine.
func (h *Host) Mflops() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	idleShare := 1.0 / (1 + h.baseLoad)
	share := (1 - h.monitorCost) / (1 + h.loadLocked())
	return baselineMflops * share / idleShare
}

// SetMemExtra sets application-driven memory use beyond base + tasks.
func (h *Host) SetMemExtra(bytes uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.memExtra = bytes
}

// FreeMem returns the free memory in bytes.
func (h *Host) FreeMem() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	used := h.memBase + h.memExtra + uint64(len(h.tasks))*h.memPerTask
	if used >= h.memTotal {
		return 0
	}
	free := h.memTotal - used
	return uint64(h.jitterLocked(float64(free)))
}

// MemTotal returns the configured RAM size.
func (h *Host) MemTotal() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.memTotal
}

// SetDiskActivity sets the workload-driven disk rate in sectors/second.
func (h *Host) SetDiskActivity(sectorsPerSec float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sectorsPerSec < 0 {
		sectorsPerSec = 0
	}
	h.diskExtra = sectorsPerSec
}

// DiskUsage returns the combined sector rate (the paper's "disk usage").
func (h *Host) DiskUsage() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.jitterLocked(h.diskBase + h.diskExtra)
}

// CacheMissRate returns the PMC cache-miss rate, which scales with CPU
// activity: busy hosts touch more cache lines.
func (h *Host) CacheMissRate() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.jitterLocked(h.pmcBasePerS * (1 + 4*h.loadLocked()))
}

// EnableBattery turns the host into a battery-powered (mobile) device with
// the given capacity in watt-hours. Power draw is idleWatts plus
// wattsPerLoad for every unit of run-queue load, and the battery drains
// with simulated time — the paper's future-work scenario where "power has
// to be considered a first-class resource".
func (h *Host) EnableBattery(capacityWh, idleWatts, wattsPerLoad float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.batteryWh = capacityWh
	h.batteryPct = 100
	h.idleWatts = idleWatts
	h.wattsPerLoad = wattsPerLoad
	h.lastDrain = h.clk.Now()
}

// powerDrawLocked is the current draw in watts.
func (h *Host) powerDrawLocked() float64 {
	return h.idleWatts + h.wattsPerLoad*h.loadLocked()
}

// drainBatteryLocked integrates the draw since the last call.
func (h *Host) drainBatteryLocked() {
	if h.batteryWh <= 0 {
		return
	}
	now := h.clk.Now()
	dt := now.Sub(h.lastDrain)
	if dt <= 0 {
		return
	}
	h.lastDrain = now
	usedWh := h.powerDrawLocked() * dt.Hours()
	h.batteryPct -= usedWh / h.batteryWh * 100
	if h.batteryPct < 0 {
		h.batteryPct = 0
	}
}

// Battery returns the remaining battery percentage (100 for mains-powered
// hosts).
func (h *Host) Battery() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.batteryWh <= 0 {
		return 100
	}
	h.drainBatteryLocked()
	return h.batteryPct
}

// PowerDraw returns the present draw in watts.
func (h *Host) PowerDraw() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.powerDrawLocked()
}

// Sample returns the current value of any metric, implementing the source
// interface d-mon's monitoring modules poll.
func (h *Host) Sample(id metrics.ID) float64 {
	switch id {
	case metrics.LOADAVG:
		return h.LoadAvg()
	case metrics.RUNQUEUE:
		h.mu.Lock()
		defer h.mu.Unlock()
		return math.Round(h.loadLocked())
	case metrics.FREEMEM:
		return float64(h.FreeMem())
	case metrics.TOTALMEM:
		return float64(h.MemTotal())
	case metrics.DISKREADS:
		return h.DiskUsage() * 0.4 / 8 // reads/s: 40% of sectors, 8 sectors/op
	case metrics.DISKWRITES:
		return h.DiskUsage() * 0.6 / 8
	case metrics.SECTORSREAD:
		return h.DiskUsage() * 0.4
	case metrics.SECTORSWRITTEN:
		return h.DiskUsage() * 0.6
	case metrics.DISKUSAGE:
		return h.DiskUsage()
	case metrics.NETBW:
		return h.link.UsedBps()
	case metrics.NETAVAIL:
		return h.link.AvailableBps()
	case metrics.NETRTT:
		return h.link.RTT().Seconds()
	case metrics.NETRETRANS:
		return h.link.LossRate() * 100 // retransmissions track loss
	case metrics.NETLOST:
		return h.link.LossRate() * 100
	case metrics.NETDELAY:
		return h.link.RTT().Seconds() / 2
	case metrics.BATTERY:
		return h.Battery()
	case metrics.POWERDRAW:
		return h.PowerDraw()
	case metrics.CACHE_MISS:
		return h.CacheMissRate()
	case metrics.INSTRUCTIONS:
		h.mu.Lock()
		defer h.mu.Unlock()
		return 2e8 * (h.loadLocked() + 0.05) // ~200 MHz-class issue rate
	case metrics.CYCLES:
		return 2e8
	}
	return 0
}

// String summarizes the host state.
func (h *Host) String() string {
	return fmt.Sprintf("%s(load=%.2f free=%dMB disk=%.0fsec/s)",
		h.name, h.LoadAvg(), h.FreeMem()>>20, h.DiskUsage())
}

// Cluster is a convenience container building n hosts with distinct seeds.
type Cluster struct {
	Hosts []*Host
}

// NewCluster creates n hosts named node0..node{n-1} sharing the clock.
func NewCluster(n int, clk clock.Clock, seed int64) *Cluster {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.Hosts = append(c.Hosts, NewHost(fmt.Sprintf("node%d", i), clk, seed+int64(i)*7919))
	}
	return c
}

// Host returns the i-th host.
func (c *Cluster) Host(i int) *Host { return c.Hosts[i] }

// Size returns the number of hosts.
func (c *Cluster) Size() int { return len(c.Hosts) }

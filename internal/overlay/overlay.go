// Package overlay derives multi-hop relay topologies from the channel
// registry's membership roster. The paper's kernel channels — and every PR
// before this one — wire a flat full mesh: each publisher holds a per-peer
// outbox for every subscriber, so connection count, publisher memory and
// fan-out cost all grow linearly with cluster size. A relay tree makes the
// publisher-side cost O(branching factor): interior nodes re-publish records
// down their subtrees, and the pooled refcounted fan-out record makes that
// re-fan-out nearly free.
//
// The tree is a pure function of the roster: every member sorts the same
// membership snapshot the same way (relay-capable members first, each group
// ordered by ID) and reads its parent and children straight out of the
// implicit b-ary heap layout. No coordination, no elected coordinator, no
// tree state on the wire — two members with the same roster snapshot always
// agree on every edge, and when the registry's TTL expires a dead relay the
// survivors re-derive a tree without it (re-parenting falls out of the
// reconnect supervisor re-evaluating its neighbor set).
package overlay

import (
	"sort"

	"dproc/internal/registry"
)

// Role values members advertise through the registry. The zero value is a
// leaf, so members predating role advertisement sort as leaves.
const (
	// RoleLeaf marks a member that only terminates events (the default).
	RoleLeaf = ""
	// RoleRelay marks a member willing to occupy an interior tree position
	// and re-publish records down its subtree.
	RoleRelay = "relay"
)

// DefaultMaxHops bounds relay-tree depth. A balanced b-ary tree reaches
// 2^16 members at branching 2 before hitting it, so in practice it only
// stops records that would otherwise loop.
const DefaultMaxHops = 16

// Topology decides which roster members a channel member connects to. The
// flat mesh and the relay tree both implement it; kecho consults it when
// dialing initial peers and on every supervisor pass, so topology changes
// (members joining, dying, or being aged out by the registry TTL) converge
// without any topology-specific machinery.
type Topology interface {
	// Neighbors returns the members self should hold connections to, given
	// a roster that includes self. The result never contains self. Order is
	// not significant; derivations must be deterministic in the roster.
	Neighbors(self string, roster []registry.Member) []registry.Member
	// MaxHops bounds how far a record may be forwarded: a relay drops any
	// record whose incremented hop count would exceed it. Zero means
	// "never forward" — the full-mesh setting.
	MaxHops() int
}

// FullMesh is the flat topology every PR before the overlay used: everyone
// connects to everyone, nothing is forwarded.
type FullMesh struct{}

// Neighbors returns every roster member except self.
func (FullMesh) Neighbors(self string, roster []registry.Member) []registry.Member {
	out := make([]registry.Member, 0, len(roster))
	for _, m := range roster {
		if m.ID != self {
			out = append(out, m)
		}
	}
	return out
}

// MaxHops is zero: a full mesh never forwards.
func (FullMesh) MaxHops() int { return 0 }

// RelayTree is the deterministic b-ary relay tree. Members sort
// relay-capable first (so interior positions go to members that volunteered
// for them) and the sorted order is read as an implicit heap: member i's
// children sit at b*i+1 … b*i+b and its parent at (i-1)/b.
type RelayTree struct {
	// Branching is the tree's fan-out per interior node. Values below 2
	// are treated as 2.
	Branching int
}

// branching returns the effective branching factor.
func (t RelayTree) branching() int {
	if t.Branching < 2 {
		return 2
	}
	return t.Branching
}

// SortRoster orders a membership snapshot into tree layout: relay-capable
// members first, each group sorted by ID. The input is not modified.
// Exported so callers that need the full layout (tests, reports) see
// exactly the order Neighbors uses.
func SortRoster(roster []registry.Member) []registry.Member {
	out := make([]registry.Member, len(roster))
	copy(out, roster)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Role == RoleRelay, out[j].Role == RoleRelay
		if ri != rj {
			return ri
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Neighbors returns self's parent and children in the tree derived from
// roster. A member absent from the roster (a registry race during join)
// degrades to full-mesh neighbors so it is never isolated; the next
// supervisor pass, with a roster that includes it, prunes back to the tree.
func (t RelayTree) Neighbors(self string, roster []registry.Member) []registry.Member {
	sorted := SortRoster(roster)
	idx := -1
	for i, m := range sorted {
		if m.ID == self {
			idx = i
			break
		}
	}
	if idx < 0 {
		return FullMesh{}.Neighbors(self, roster)
	}
	b := t.branching()
	out := make([]registry.Member, 0, b+1)
	if idx > 0 {
		out = append(out, sorted[(idx-1)/b])
	}
	for c := b*idx + 1; c <= b*idx+b && c < len(sorted); c++ {
		out = append(out, sorted[c])
	}
	return out
}

// MaxHops returns the forwarding bound.
func (t RelayTree) MaxHops() int { return DefaultMaxHops }

package overlay

import (
	"fmt"
	"sort"
	"testing"

	"dproc/internal/registry"
)

func roster(n int, relays int) []registry.Member {
	out := make([]registry.Member, 0, n)
	for i := 0; i < n; i++ {
		role := RoleLeaf
		if i < relays {
			role = RoleRelay
		}
		out = append(out, registry.Member{
			ID:   fmt.Sprintf("node%02d", i),
			Addr: fmt.Sprintf("127.0.0.1:%d", 10000+i),
			Role: role,
		})
	}
	return out
}

func ids(ms []registry.Member) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	sort.Strings(out)
	return out
}

func TestFullMeshNeighbors(t *testing.T) {
	r := roster(4, 0)
	n := FullMesh{}.Neighbors("node01", r)
	if len(n) != 3 {
		t.Fatalf("full mesh neighbors = %v, want 3 members", ids(n))
	}
	for _, m := range n {
		if m.ID == "node01" {
			t.Fatal("neighbors contain self")
		}
	}
	if (FullMesh{}).MaxHops() != 0 {
		t.Fatal("full mesh must never forward")
	}
}

// TestRelayTreeShape pins the implicit-heap layout: with branching 2 over 7
// members (all relay-capable, so layout order is ID order), node00 is the
// root with children node01/node02, and node03's parent is node01.
func TestRelayTreeShape(t *testing.T) {
	r := roster(7, 7)
	tr := RelayTree{Branching: 2}
	cases := []struct {
		self string
		want []string
	}{
		{"node00", []string{"node01", "node02"}},
		{"node01", []string{"node00", "node03", "node04"}},
		{"node02", []string{"node00", "node05", "node06"}},
		{"node03", []string{"node01"}},
		{"node06", []string{"node02"}},
	}
	for _, c := range cases {
		got := ids(tr.Neighbors(c.self, r))
		want := append([]string(nil), c.want...)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("%s: neighbors %v, want %v", c.self, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: neighbors %v, want %v", c.self, got, want)
			}
		}
	}
}

// TestRelayTreeRelaysFirst pins the role-aware layout: relay-capable
// members take the interior positions regardless of ID order, so a leaf's
// parent is always a relay while relays outnumber interior slots.
func TestRelayTreeRelaysFirst(t *testing.T) {
	// node05..node07 are relays, node00..node04 leaves; sorted layout is
	// [node05 node06 node07 node00 node01 node02 node03 node04].
	r := roster(8, 0)
	for i := 5; i < 8; i++ {
		r[i].Role = RoleRelay
	}
	tr := RelayTree{Branching: 2}
	// Leaf node00 sits at layout index 3: its parent is index (3-1)/2 = 1
	// (node06) and its children indices 7 (node04) and 8 (absent).
	got := ids(tr.Neighbors("node00", r))
	want := []string{"node04", "node06"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("leaf neighbors %v, want %v", got, want)
	}
	// The root is the first relay.
	root := ids(tr.Neighbors("node05", r))
	want = []string{"node06", "node07"}
	if len(root) != len(want) || root[0] != want[0] || root[1] != want[1] {
		t.Fatalf("root neighbors %v, want %v", root, want)
	}
}

// TestRelayTreeSymmetric asserts the edge relation is symmetric: if a is a
// neighbor of b, then b is a neighbor of a — the property that makes every
// tree edge a real bidirectional connection.
func TestRelayTreeSymmetric(t *testing.T) {
	r := roster(20, 4)
	tr := RelayTree{Branching: 3}
	for _, a := range r {
		for _, b := range tr.Neighbors(a.ID, r) {
			back := tr.Neighbors(b.ID, r)
			found := false
			for _, m := range back {
				if m.ID == a.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %s->%s not symmetric", a.ID, b.ID)
			}
		}
	}
}

// TestRelayTreeConnected asserts every member is reachable from the root:
// the union of neighbor edges spans the roster (no orphaned subtrees).
func TestRelayTreeConnected(t *testing.T) {
	for _, branching := range []int{2, 3, 8} {
		r := roster(33, 5)
		tr := RelayTree{Branching: branching}
		adj := map[string][]string{}
		for _, m := range r {
			for _, n := range tr.Neighbors(m.ID, r) {
				adj[m.ID] = append(adj[m.ID], n.ID)
			}
		}
		seen := map[string]bool{r[0].ID: true}
		queue := []string{r[0].ID}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, n := range adj[cur] {
				if !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			}
		}
		if len(seen) != len(r) {
			t.Fatalf("branching %d: reached %d of %d members", branching, len(seen), len(r))
		}
	}
}

// TestRelayTreeBoundedDegree asserts no member holds more than
// branching+1 connections — the publisher-side flatness claim.
func TestRelayTreeBoundedDegree(t *testing.T) {
	r := roster(100, 10)
	tr := RelayTree{Branching: 4}
	for _, m := range r {
		if n := len(tr.Neighbors(m.ID, r)); n > 5 {
			t.Fatalf("%s has %d neighbors, want <= branching+1 = 5", m.ID, n)
		}
	}
}

// TestRelayTreeSelfMissing pins the degraded mode: a member whose join has
// not yet landed in its own roster snapshot connects full-mesh rather than
// isolating itself.
func TestRelayTreeSelfMissing(t *testing.T) {
	r := roster(5, 1)
	got := RelayTree{Branching: 2}.Neighbors("ghost", r)
	if len(got) != 5 {
		t.Fatalf("missing self degrades to %d neighbors, want full mesh of 5", len(got))
	}
}

func TestSortRosterDoesNotMutate(t *testing.T) {
	r := roster(6, 0)
	r[5].Role = RoleRelay
	before := ids(r)
	sorted := SortRoster(r)
	if sorted[0].ID != "node05" {
		t.Fatalf("sorted[0] = %s, want the relay first", sorted[0].ID)
	}
	after := ids(r)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("SortRoster mutated its input")
		}
	}
}

package federation

import (
	"testing"
	"time"

	"dproc/internal/clock"
	"dproc/internal/core"
	"dproc/internal/dmon"
	"dproc/internal/kecho"
	"dproc/internal/metrics"
	"dproc/internal/registry"
)

// rig is one cluster plus a gateway onto a separate wide-area registry, and
// a grid-side observer d-mon on the uplink channels.
type rig struct {
	cluster  *core.SimCluster
	gateway  *Gateway
	observer *dmon.DMon
	obsMon   *kecho.Channel
	obsCtl   *kecho.Channel
}

func newRig(t *testing.T, mode Mode) *rig {
	t.Helper()
	cluster, err := core.NewSimCluster(3, clock.NewReal(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	for _, h := range cluster.Hosts {
		h.SetNoise(0)
	}

	// Wide-area registry and channels.
	wan, err := registry.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wan.Close() })
	joinWAN := func(channel, id string) *kecho.Channel {
		cli := registry.NewClient(wan.Addr())
		t.Cleanup(func() { cli.Close() })
		ch, err := kecho.Join(cli, channel, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ch.Close() })
		return ch
	}
	upMon := joinWAN("grid.monitoring", "gw-clusterA")
	upCtl := joinWAN("grid.control", "gw-clusterA")
	obsMon := joinWAN("grid.monitoring", "grid-manager")
	obsCtl := joinWAN("grid.control", "grid-manager")
	upMon.WaitForPeers(1, 2*time.Second)
	upCtl.WaitForPeers(1, 2*time.Second)

	// The gateway joins the cluster's own channels as an extra member.
	joinLocal := func(channel string) *kecho.Channel {
		cli := registry.NewClient(cluster.Registry.Addr())
		t.Cleanup(func() { cli.Close() })
		ch, err := kecho.Join(cli, channel, "gateway", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ch.Close() })
		return ch
	}
	localMon := joinLocal(dmon.MonitoringChannel)
	localCtl := joinLocal(dmon.ControlChannel)
	localMon.WaitForPeers(3, 2*time.Second)
	localCtl.WaitForPeers(3, 2*time.Second)

	gw, err := NewGateway(Config{
		ClusterName: "clusterA",
		Mode:        mode,
		Period:      time.Millisecond, // push eagerly in tests
		LocalMon:    localMon,
		LocalCtl:    localCtl,
		UpMon:       upMon,
		UpCtl:       upCtl,
	})
	if err != nil {
		t.Fatal(err)
	}

	observer := dmon.New("grid-manager", clock.NewReal(), nil)
	observer.Attach(obsMon, obsCtl)
	return &rig{cluster: cluster, gateway: gw, observer: observer, obsMon: obsMon, obsCtl: obsCtl}
}

// pump runs the whole pipeline until cond holds: cluster publishes, gateway
// polls/pushes, observer drains.
func (r *rig) pump(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		_, _, _ = r.cluster.PollAll()
		r.cluster.DrainAll(5 * time.Millisecond)
		if _, err := r.gateway.Poll(); err != nil {
			t.Fatal(err)
		}
		r.observer.PollChannels()
		time.Sleep(2 * time.Millisecond)
	}
}

func TestForwardModeExportsRenamedNodes(t *testing.T) {
	r := newRig(t, Forward)
	r.cluster.Hosts[1].AddTask(2)
	r.pump(t, func() bool {
		v, ok := r.observer.Store().Value("clusterA/node1", metrics.LOADAVG)
		return ok && v == 2
	})
	// All three nodes visible under the prefix.
	nodes := r.observer.Store().Nodes()
	seen := map[string]bool{}
	for _, n := range nodes {
		seen[n] = true
	}
	for _, want := range []string{"clusterA/node0", "clusterA/node1", "clusterA/node2"} {
		if !seen[want] {
			t.Fatalf("observer nodes = %v, missing %s", nodes, want)
		}
	}
	pushed, _ := r.gateway.Stats()
	if pushed == 0 {
		t.Fatal("gateway counted no pushes")
	}
}

func TestAggregateModeExportsOneSummary(t *testing.T) {
	r := newRig(t, Aggregate)
	r.cluster.Hosts[0].AddTask(3) // loads: 3, 0, 0 → mean 1
	r.pump(t, func() bool {
		v, ok := r.observer.Store().Value("clusterA", metrics.LOADAVG)
		return ok && v == 1
	})
	// Summed capacity: three 512 MB nodes.
	total, ok := r.observer.Store().Value("clusterA", metrics.TOTALMEM)
	if !ok || total != float64(3*(512<<20)) {
		t.Fatalf("TOTALMEM = (%g, %v)", total, ok)
	}
	// No per-node names leak in aggregate mode.
	for _, n := range r.observer.Store().Nodes() {
		if n != "clusterA" {
			t.Fatalf("unexpected exported node %q", n)
		}
	}
}

func TestInwardControlRouting(t *testing.T) {
	r := newRig(t, Forward)
	// Ensure data flows first so the route is warm.
	r.pump(t, func() bool {
		_, ok := r.observer.Store().Value("clusterA/node2", metrics.LOADAVG)
		return ok
	})
	// The grid manager retunes one node inside the cluster: the control
	// event crosses the WAN channel to the gateway, which re-addresses it
	// onto the cluster's own control channel.
	payload := dmon.EncodeControl("clusterA/node2", "period disk 9")
	if err := r.obsCtl.SubmitTo("gw-clusterA", payload); err != nil {
		t.Fatal(err)
	}
	r.pump(t, func() bool {
		return r.cluster.Nodes[2].DMon().Period(metrics.Disk) == 9*time.Second
	})
	// Other nodes untouched.
	if r.cluster.Nodes[1].DMon().Period(metrics.Disk) != time.Second {
		t.Fatal("control leaked to another node")
	}
	_, routed := r.gateway.Stats()
	if routed != 1 {
		t.Fatalf("routed = %d", routed)
	}
}

func TestInwardBroadcastControl(t *testing.T) {
	r := newRig(t, Forward)
	r.pump(t, func() bool {
		_, ok := r.observer.Store().Value("clusterA/node0", metrics.LOADAVG)
		return ok
	})
	// Target "clusterA" with no node part: broadcast within the cluster.
	payload := dmon.EncodeControl("clusterA", "period cpu 6")
	if err := r.obsCtl.SubmitTo("gw-clusterA", payload); err != nil {
		t.Fatal(err)
	}
	r.pump(t, func() bool {
		for _, n := range r.cluster.Nodes {
			if n.DMon().Period(metrics.CPU) != 6*time.Second {
				return false
			}
		}
		return true
	})
}

func TestControlForOtherClusterIgnored(t *testing.T) {
	r := newRig(t, Forward)
	r.pump(t, func() bool {
		_, ok := r.observer.Store().Value("clusterA/node0", metrics.LOADAVG)
		return ok
	})
	payload := dmon.EncodeControl("clusterB/node0", "period cpu 8")
	if err := r.obsCtl.SubmitTo("gw-clusterA", payload); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := r.gateway.Poll(); err != nil {
		t.Fatal(err)
	}
	if r.cluster.Nodes[0].DMon().Period(metrics.CPU) != time.Second {
		t.Fatal("control for another cluster applied here")
	}
	_, routed := r.gateway.Stats()
	if routed != 0 {
		t.Fatalf("routed = %d", routed)
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	if _, err := NewGateway(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewGateway(Config{ClusterName: "a/b"}); err == nil {
		t.Fatal("separator in cluster name accepted")
	}
}

func TestSplitNodeName(t *testing.T) {
	c, n := SplitNodeName("clusterA/node3")
	if c != "clusterA" || n != "node3" {
		t.Fatalf("split = (%q, %q)", c, n)
	}
	c, n = SplitNodeName("clusterA")
	if c != "clusterA" || n != "" {
		t.Fatalf("split = (%q, %q)", c, n)
	}
}

func TestModeString(t *testing.T) {
	if Forward.String() != "forward" || Aggregate.String() != "aggregate" {
		t.Fatal("mode names")
	}
}

// Package federation extends dproc toward the paper's stated future work —
// "using dproc in wide-area grids". A Gateway bridges one cluster's
// monitoring and control channels onto wide-area uplink channels: local
// monitoring reports are renamed under a cluster prefix
// ("clusterA/node0") and forwarded — or summarized into a single aggregate
// report per cluster, since the perturbation arguments that motivate
// filtering inside a cluster apply tenfold across a WAN. Control commands
// arriving from the grid side are routed inward: a grid manager can write
// "clusterA/node0"-addressed parameters or filters and the gateway delivers
// them onto the cluster's own control channel.
package federation

import (
	"errors"
	"strings"
	"sync"
	"time"

	"dproc/internal/clock"
	"dproc/internal/dmon"
	"dproc/internal/kecho"
	"dproc/internal/metrics"
)

// Mode selects how a gateway exports its cluster.
type Mode int

// Gateway export modes.
const (
	// Forward republishes every node's report under "<cluster>/<node>".
	Forward Mode = iota
	// Aggregate publishes one summary report named "<cluster>" combining
	// all local nodes (mean loads, summed capacities, min availability).
	Aggregate
)

// String names the mode.
func (m Mode) String() string {
	if m == Aggregate {
		return "aggregate"
	}
	return "forward"
}

// Sep joins cluster and node names in exported identifiers.
const Sep = "/"

// SplitNodeName splits an exported name into cluster and node parts; node
// is empty for aggregate reports.
func SplitNodeName(exported string) (cluster, node string) {
	if i := strings.Index(exported, Sep); i >= 0 {
		return exported[:i], exported[i+len(Sep):]
	}
	return exported, ""
}

// Gateway bridges one cluster to the wide area.
type Gateway struct {
	cluster string
	clk     clock.Clock
	mode    Mode
	period  time.Duration

	localMon *kecho.Channel
	localCtl *kecho.Channel
	upMon    *kecho.Channel
	upCtl    *kecho.Channel

	mu       sync.Mutex
	store    *dmon.Store
	nextPush time.Time
	pushed   uint64
	routed   uint64
}

// Config configures a gateway.
type Config struct {
	// ClusterName is the prefix this cluster's data is exported under.
	ClusterName string
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Mode selects Forward or Aggregate export.
	Mode Mode
	// Period is the minimum interval between uplink pushes; local reports
	// are coalesced between pushes (0 means 5 s — WANs want sparser data
	// than the cluster's 1 s default).
	Period time.Duration
	// LocalMon and LocalCtl are the cluster-side channels; UpMon and UpCtl
	// the wide-area channels. LocalCtl and UpCtl may be nil to disable
	// inward control routing.
	LocalMon, LocalCtl, UpMon, UpCtl *kecho.Channel
}

// NewGateway wires the bridge and subscribes to both sides.
func NewGateway(cfg Config) (*Gateway, error) {
	if cfg.ClusterName == "" {
		return nil, errors.New("federation: cluster name required")
	}
	if strings.Contains(cfg.ClusterName, Sep) {
		return nil, errors.New("federation: cluster name may not contain the separator")
	}
	if cfg.LocalMon == nil || cfg.UpMon == nil {
		return nil, errors.New("federation: local and uplink monitoring channels required")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	period := cfg.Period
	if period == 0 {
		period = 5 * time.Second
	}
	g := &Gateway{
		cluster:  cfg.ClusterName,
		clk:      clk,
		mode:     cfg.Mode,
		period:   period,
		localMon: cfg.LocalMon,
		localCtl: cfg.LocalCtl,
		upMon:    cfg.UpMon,
		upCtl:    cfg.UpCtl,
		store:    dmon.NewStore(),
	}
	// Local monitoring accumulates in the gateway's store until the next
	// uplink push.
	g.localMon.Subscribe(func(ev kecho.Event) {
		report, err := metrics.DecodeReport(ev.Payload)
		if err != nil {
			return
		}
		g.store.Update(report)
	})
	// Wide-area control events addressed to this cluster route inward.
	if g.upCtl != nil && g.localCtl != nil {
		g.upCtl.Subscribe(func(ev kecho.Event) {
			target, text, err := dmon.DecodeControl(ev.Payload)
			if err != nil {
				return
			}
			clusterName, node := SplitNodeName(target)
			if clusterName != g.cluster {
				return
			}
			payload := dmon.EncodeControl(node, text)
			if node == "" {
				_, _ = g.localCtl.Submit(payload)
			} else if err := g.localCtl.SubmitTo(node, payload); err != nil {
				return
			}
			g.mu.Lock()
			g.routed++
			g.mu.Unlock()
		})
	}
	return g, nil
}

// ClusterName returns the export prefix.
func (g *Gateway) ClusterName() string { return g.cluster }

// Stats reports uplink pushes and inward-routed control commands.
func (g *Gateway) Stats() (pushed, routed uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pushed, g.routed
}

// Poll drains both sides' inboxes and pushes uplink if the period elapsed.
// Call it from the site's poll loop, like d-mon's own per-second poll.
func (g *Gateway) Poll() (pushedNow int, err error) {
	g.localMon.Poll()
	if g.upCtl != nil {
		g.upCtl.Poll()
	}
	if g.localCtl != nil {
		g.localCtl.Poll()
	}
	now := g.clk.Now()
	g.mu.Lock()
	due := !now.Before(g.nextPush)
	if due {
		g.nextPush = now.Add(g.period)
	}
	g.mu.Unlock()
	if !due {
		return 0, nil
	}
	return g.PushOnce()
}

// PushOnce exports the current cluster state uplink immediately.
func (g *Gateway) PushOnce() (int, error) {
	now := g.clk.Now()
	nodes := g.store.Nodes()
	if len(nodes) == 0 {
		return 0, nil
	}
	var sent int
	if g.mode == Forward {
		for _, node := range nodes {
			report := &metrics.Report{Node: g.cluster + Sep + node, Time: now}
			for _, id := range g.store.Metrics(node) {
				if s, ok := g.store.Get(node, id); ok {
					report.Samples = append(report.Samples, s)
				}
			}
			if len(report.Samples) == 0 {
				continue
			}
			if _, err := g.upMon.Submit(report.Encode()); err != nil {
				return sent, err
			}
			sent++
		}
	} else {
		report := g.aggregate(now, nodes)
		if len(report.Samples) > 0 {
			if _, err := g.upMon.Submit(report.Encode()); err != nil {
				return sent, err
			}
			sent++
		}
	}
	g.mu.Lock()
	g.pushed += uint64(sent)
	g.mu.Unlock()
	return sent, nil
}

// aggKind says how a metric combines across nodes.
func aggKind(id metrics.ID) string {
	switch id {
	case metrics.FREEMEM, metrics.TOTALMEM, metrics.DISKREADS, metrics.DISKWRITES,
		metrics.SECTORSREAD, metrics.SECTORSWRITTEN, metrics.DISKUSAGE,
		metrics.NETBW, metrics.NETRETRANS, metrics.NETLOST,
		metrics.CACHE_MISS, metrics.INSTRUCTIONS, metrics.CYCLES, metrics.POWERDRAW:
		return "sum"
	case metrics.NETAVAIL, metrics.BATTERY:
		// A cluster is as reachable as its best link; as alive as its
		// weakest battery.
		return "min"
	default: // LOADAVG, RUNQUEUE, NETRTT, NETDELAY
		return "mean"
	}
}

// aggregate combines every node's latest samples into one cluster report.
func (g *Gateway) aggregate(now time.Time, nodes []string) *metrics.Report {
	report := &metrics.Report{Node: g.cluster, Time: now}
	for _, id := range metrics.AllIDs() {
		var sum, min float64
		count := 0
		for _, node := range nodes {
			v, ok := g.store.Value(node, id)
			if !ok {
				continue
			}
			if count == 0 || v < min {
				min = v
			}
			sum += v
			count++
		}
		if count == 0 {
			continue
		}
		var v float64
		switch aggKind(id) {
		case "sum":
			v = sum
		case "min":
			v = min
		default:
			v = sum / float64(count)
		}
		report.Samples = append(report.Samples, metrics.Sample{ID: id, Value: v, Time: now})
	}
	return report
}
